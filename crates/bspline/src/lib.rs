//! `bspline` — multi-orbital B-spline SPO evaluation engines.
//!
//! This crate is the primary contribution of *"Optimization and
//! parallelization of B-spline based orbital evaluations in QMC on
//! multi/many-core shared memory processors"* (Mathuriya, Luo, Benali,
//! Shulenburger, Kim — IPDPS 2017) rebuilt in portable Rust:
//!
//! | paper | here |
//! |---|---|
//! | `BsplineAoS` baseline (Fig. 4a) | [`aos::BsplineAoS`] |
//! | Opt A: AoS→SoA outputs (Fig. 4b) | [`soa::BsplineSoA`] |
//! | Opt B: AoSoA tiling (Fig. 5b/6) | [`aosoa::BsplineAoSoA`] |
//! | Opt C: nested threading (Sec. V-C) | [`parallel::run_nested`] |
//! | orbital-block decomposition (Sec. IV, Fig. 9/10 substrate) | [`blocked::BlockedEngine`] |
//! | miniQMC driver (Fig. 3) | [`walker`] |
//! | multi-walker batching (Fig. 6 loop order) | [`batch`] |
//! | explicit vectorization (Fig. 6–7, Table 4) | [`simd`] |
//! | throughput metric `T = Nw·N/t` | [`throughput::Throughput`] |
//!
//! The hot inner loops are explicit SIMD micro-kernels ([`simd`]):
//! a lane abstraction ([`simd::SimdReal`]) with AVX2+FMA and SSE2
//! `std::arch` backends plus a portable scalar-array fallback, selected
//! once at runtime by CPU detection (override with
//! `QMC_SIMD=avx2|sse2|scalar` for A/B testing, or disable the whole
//! layer with `--no-default-features`). All backends perform the same
//! elementwise operation chain, so fused backends are bit-identical to
//! the portable reference — the paper's "high SIMD efficiency on
//! aligned, padded streams" realized with hand-written kernels where
//! auto-vectorization falls short (`mul_add` on a baseline x86-64
//! target lowers to a libm call that blocks vectorization).
//!
//! # The batched multi-walker API
//!
//! Every engine exposes `v_batch` / `vgl_batch` / `vgh_batch` (and a
//! kernel-dispatched `eval_batch`) next to the scalar entry points:
//!
//! * **Block layout.** Positions travel as a [`batch::PosBlock`] — one
//!   unit-stride stream per coordinate (the SoA transformation applied
//!   to the *input* side). Results land in a [`batch::BatchOut`]: one
//!   per-position output block, indexable after the call.
//! * **Buffer ownership.** The *caller* owns the output allocation:
//!   [`engine::SpoEngine::make_batch_out`] allocates once, batched calls
//!   only overwrite. Drivers reuse one `BatchOut` across every
//!   generation (and across the ragged tail of a chunked stream — extra
//!   blocks are simply left untouched).
//! * **What the engines hoist.** All three engines locate the grid cell
//!   and build the three `BasisWeights` blocks once per position, up
//!   front, instead of inside the kernel. For [`aos::BsplineAoS`] the
//!   batched VGL also hoists the baseline's per-call scratch allocation
//!   across the block.
//! * **Why tile-major batching helps AoSoA.** The scalar path is
//!   position-major: every position touches all `M` coefficient tiles
//!   before the next position, so each tile's `4·Ng·Nb` input block is
//!   re-fetched per position. The batched path transposes the loops
//!   (tiles outer, positions inner — the actual Fig. 6 order): one
//!   tile's coefficient block and `Nb`-sized output stripes stay
//!   cache-hot for the whole batch, and the per-position basis weights
//!   are shared by all tiles instead of recomputed `M` times.
//!
//! Results are **bit-identical** to the scalar loop (the batched paths
//! reorder only independent work), which the workspace property tests
//! assert for all layouts and batch sizes including 0 and 1.
//!
//! # Threading & blocking model
//!
//! The scaling substrate (paper Sec. IV–V and Fig. 9/10) is the
//! **orbital-block decomposition** ([`blocked::BlockedEngine`]): one
//! logical table of N orbitals served by `B` independent spline blocks,
//! scheduled as a walker×block grid.
//!
//! * **Block-size derivation.** The block width is the widest multiple
//!   of the cache-line quantum (16 `f32` / 8 `f64` splines) whose
//!   standalone coefficient slab — `(gx+3)(gy+3)(gz+3) · nb ·
//!   sizeof(T)` bytes — fits a byte budget
//!   ([`einspline::MultiCoefs::block_splines_for_budget`]). The budget
//!   candidates are the cache hierarchy's natural levels
//!   ([`tuning::BlockBudgets`]): private L2, shared LLC divided by the
//!   worker count, and the whole table (`B = 1`, the monolithic
//!   degenerate case). [`tuning::tune_block_budget`] measures the three
//!   and [`tuning::default_block_budget`] records the winner on the
//!   baseline host — LLC/workers for super-LLC tables (1.31× over
//!   monolithic on the recorded N = 2048 nested VGH generation rows),
//!   the whole table (B = 1) below the LLC — because a generation's
//!   positions re-touch a resident block slab where the monolithic
//!   slab thrashes; see its docs for the sweep numbers.
//! * **Nested schedule.** [`parallel::run_nested_blocked`] partitions
//!   the `B` blocks into `nth` contiguous chunks
//!   ([`parallel::partition_tiles`], non-empty chunks only) and crosses
//!   them with walkers; each `(walker, chunk)` work item owns a
//!   [`output::WalkerSoA::split_streams_mut`] view of its walker's
//!   contiguous output over the chunk's orbital range, so disjointness
//!   is borrow-checked — no atomics, no interior mutability. The
//!   grid-locate + basis weights are hoisted once per position and
//!   shared by all blocks. Worker counts come from
//!   `rayon::current_num_threads()`, pinnable via `QMC_THREADS` (CI
//!   runs the suite at 1 and 4).
//! * **First-touch rationale.** [`blocked::BlockedEngine::from_multi`]
//!   builds each block's table inside the same balanced static
//!   partition the nested schedule later uses, so each worker allocates
//!   *and writes* exactly the slabs it will stream — on a NUMA host,
//!   first-touch page placement puts a block's pages in the domain of
//!   the thread that reads them every generation. (Exact with a pinned
//!   rayon pool; approximated by the vendored scoped-thread stub.)
//! * **Prefetch distance.** The block-/tile-major batch loops issue
//!   `_mm_prefetch(T1)` for the sixteen (i,j) coefficient runs **one
//!   evaluation ahead**: the current block's next position while
//!   sweeping a block, the next block's first position at the block
//!   switch. One evaluation is `64·nb` coefficient reads — far enough
//!   for the lines (and their TLB entries) to arrive, close enough
//!   that they are not evicted before use (`simd` feature only; no-op
//!   elsewhere).
//!
//! Blocked outputs are **bit-identical** to the monolithic engine on
//! fused backends for every block shape (the per-orbital operation
//! chain never crosses a block boundary); `tests/integration_blocked.rs`
//! property-tests this across kernels × backends × budgets × precisions
//! × scalar/batched/nested entry.
//!
//! # Service model
//!
//! The closed-loop entry points above borrow an engine per call. The
//! service layer ([`replica`], [`service`]) inverts the ownership for
//! open-loop workloads — many independent walker streams submitting at
//! their own pace:
//!
//! * **Ownership.** [`service::SpoService::new`] moves the engine into
//!   an [`replica::EngineCell`] and spawns long-lived worker threads,
//!   each owning one [`replica::Replica`] handle. A replica pins the
//!   SIMD backend active at mint time and re-arms it on the worker for
//!   every batch, so forced scalar/SIMD A/B measurement works across
//!   the submission boundary. The fork-join entry points in
//!   [`parallel`] are generic over [`replica::EngineRef`], so the
//!   closed-loop (`&engine`) and service (`Replica`) paths share one
//!   code path.
//! * **Coalescing policy.** Submissions carry a kernel tag. A worker
//!   seeds a batch from the queue head and splices every queued
//!   same-kernel request ([`batch::PosBlock::extend_from_block`]) into
//!   one fused block, up to `max_batch` positions; holding a *partial*
//!   batch it waits at most `max_wait` for stragglers before
//!   evaluating. Fusing never splits a per-orbital accumulation chain,
//!   so coalesced results are **bit-identical** to a direct `*_batch`
//!   call on every backend (property-tested in
//!   `tests/integration_service.rs`).
//! * **Backpressure.** The queue admits at most `queue_positions`
//!   pending positions; [`service::SpoService::submit`] blocks until
//!   space frees (an oversized request is admitted only when the
//!   service is idle, so it cannot deadlock), and
//!   [`service::SpoService::try_submit`] returns the request instead of
//!   blocking. Completion is zero-copy: the caller's
//!   [`batch::BatchOut`] blocks move into the fused engine call and
//!   come back filled through the [`service::Ticket`]. Dropping the
//!   service drains every queued request before joining the workers.
//! * **Trait adapter.** [`service::ServiceClient`] implements
//!   [`engine::SpoEngine`] over a shared service, so trait-generic
//!   drivers (miniqmc's `SpoSet`) run service-backed unchanged.
//!
//! # Sharding & routing
//!
//! On a multi-domain host one FIFO queue squanders the locality the
//! blocked layout worked for: submitters with disjoint working sets
//! interleave in arrival order, so consecutive fused batches sweep
//! unrelated coefficient regions and every batch re-streams from DRAM.
//! The routing layer ([`service::RoutingPolicy`]) splits the service
//! into per-domain shard queues and routes each submission to the
//! shard whose replicas keep its coefficient region warm:
//!
//! * **Shards.** [`service::ServiceConfig::routing`] selects the shard
//!   count: `Fifo` forces one queue (the pre-routing behavior, and the
//!   recorded-baseline configuration), `Auto` matches the detected
//!   NUMA domain count ([`tuning::numa_domains`], overridable via
//!   `QMC_NUMA_DOMAINS`), `Affinity { domains }` pins it explicitly.
//!   Replica workers are minted round-robin across domains
//!   ([`replica::EngineCell::handles_for_domains`]) and drain their
//!   *home* shard queue first.
//! * **Affinity scoring.** Each submitted block's positions are
//!   quantized onto a small per-axis lattice over the engine's domain;
//!   an [`einspline::ShardMap`] partitions the lattice cells across
//!   shards. A strict majority of positions in one shard's cells wins;
//!   otherwise a content hash of the cell sequence decides, so
//!   identical blocks always land on the same queue and the coalescer
//!   fuses them adjacently (cache-distance reuse of the same
//!   coefficient lines).
//! * **Spill policy.** Affinity yields to load: when the scored queue
//!   already holds more than `max(max_batch, queue_positions/shards)`
//!   positions and a strictly cooler queue exists, the request spills
//!   to the least-loaded queue. Idle workers steal from other shards
//!   in rotation order, so a hot shard never serializes the service.
//!   Both events are counted ([`service::StatsSnapshot::spilled`],
//!   [`service::StatsSnapshot::stolen`]).
//! * **Single-domain no-op contract.** Routing picks *where a request
//!   waits*, never how it is split or fused — so every routed result
//!   is **bit-identical** to a direct `*_batch` call, and with one
//!   shard (single-domain hosts, or `Fifo`) the router degenerates to
//!   exactly the old single-queue FIFO: no classification, no spills,
//!   no steals (property-tested across policies in
//!   `tests/integration_service.rs`).
//!
//! # Failure model
//!
//! The service layer is built to survive its own workers
//! ([`service`]'s module docs carry the full contract):
//!
//! * **Error taxonomy.** A submission's [`service::Ticket`] redeems to
//!   `Result<_, `[`service::Failed`]`>`; the failure carries a
//!   [`service::ServiceError`] — `Timeout` (the caller's wait bound in
//!   [`service::Ticket::redeem_for`] expired; the live claim is handed
//!   back), `Shed` (the request's own deadline from
//!   [`service::SpoService::submit_with_deadline`] passed while it
//!   queued), `WorkerLost` (the request crashed workers past its
//!   [`service::ServiceConfig::max_retries`] budget), `ShuttingDown`
//!   (the service stopped first) — plus the caller's position/output
//!   buffers, so no buffer is ever lost to a failure.
//! * **Retry & supervision.** Kernel evaluation runs under
//!   `catch_unwind`; a panicking batch is un-fused, its requests
//!   re-enqueued (front of queue, bounded by `max_retries`), and the
//!   dead worker slot is re-minted from the [`replica::EngineCell`]
//!   with the same domain tag by a supervisor thread. Load shedding is
//!   the deadline dual: expired requests are dropped *before*
//!   evaluation, never mid-fuse.
//! * **Bit-identity of successes.** Faults decide *whether* a request
//!   evaluates, never *how*: every successful result — retried,
//!   re-coalesced, degraded pool or not — is bit-identical to the
//!   direct `*_batch` call (chaos-tested in
//!   `tests/integration_service_faults.rs` under scripted
//!   [`service::ServiceFaultPlan`]s).
//! * **Graceful degradation.** [`service::ServiceClient`] retries with
//!   exponential backoff and, gated on [`service::SpoService::health`],
//!   falls back to direct evaluation on the shared engine
//!   ([`service::ClientConfig`]), so trait-level drivers keep producing
//!   physics when replicas die.
//!
//! # Per-move evaluation
//!
//! Real VMC/DMC traffic is dominated by **single-electron** moves, and
//! the batched API pessimizes that batch-of-1 shape: every scalar call
//! re-runs the grid locate and rebuilds the basis weights, and the same
//! position is evaluated twice per accepted move (V for the ratio test,
//! then VGL/VGH for drift). The one-move path ([`onemove`]) makes the
//! propose→accept pair first-class:
//!
//! ```text
//!   propose r'  ──►  v_one(ctx, r')        locate + weights computed,
//!                    │                     cached in ctx keyed by r'
//!                    ▼
//!               ratio = det ratio from V
//!                    │
//!        ┌───────────┴───────────┐
//!     accept                   reject
//!        │                        │
//!        ▼                        ▼
//!   vgl_one(ctx, r')         (nothing: the stale cache entry is
//!    │  cache HIT — locate    simply overwritten by the next
//!    │  + weights reused,     proposal's v_one)
//!    │  kernel only
//!    ▼
//!   rank-1 determinant update, drift from G
//! ```
//!
//! * **What is cached where.** A [`onemove::MoveContext`] lives with
//!   the *walker* (one per walker × engine): the hoisted
//!   [`batch::Located`] for the last proposed position (keyed by the
//!   exact floats), reusable scratch for the AoS VGL workspace, and a
//!   lazily built `f32` sub-context for [`precision::MixedEngine`]
//!   (positions narrow once per move). Nothing allocates on the hot
//!   path in steady state.
//! * **Two protocols, picked by table residency.** For cache-resident
//!   tables the split protocol above is right: the propose-side V is
//!   cheap and the accept-side VGL rides warm lines. For
//!   streaming-sized tables (paper-scale: N = 512 at a 32³ grid is a
//!   ~67 MB table, ~128 KB touched per evaluation) every pass is
//!   DRAM-bound, so the accept-side pass re-streams what propose just
//!   read; there the **fused** variant wins — `vgl_one` on propose
//!   computes V for the ratio *and* G/L for the drift in one streaming
//!   pass (the extra arithmetic hides under the line traffic), and the
//!   accept side reads the context-cached output streams with no
//!   further kernel call, making the pair's cost one cold pass
//!   regardless of acceptance rate (measured ~1.6× the scalar
//!   `v`+`vgl` sequence; `qmc-bench`'s `onemove_vgl_…` rows).
//! * **Engine coverage.** [`engine::SpoEngine::v_one`] /
//!   [`engine::SpoEngine::vgl_one`] / [`engine::SpoEngine::vgh_one`]
//!   have native overrides in all layout engines ([`soa::BsplineSoA`]
//!   through a dedicated single-position kernel whose streaming-V walk
//!   software-prefetches the next orbital chunk's 64 line segments —
//!   a batch-of-1 eval has no neighbor position to overlap with and
//!   its 64 concurrent z-line streams defeat the hardware prefetcher,
//!   [`aos::BsplineAoS`], [`aosoa::BsplineAoSoA`] with one-tile-ahead
//!   prefetch), [`blocked::BlockedEngine`] (per-block scatter through
//!   [`output::SoAStreamsMut`] with next-block prefetch),
//!   [`precision::MixedEngine`] (narrow-in / widen-out per move) and
//!   [`service::ServiceClient`] (single-position submissions ride the
//!   coalescer). Engines without an override fall back to the scalar
//!   path — the default is always correct, just slower.
//! * **Bit-identity.** The context only caches what the scalar paths
//!   recompute identically ([`batch::Located::new`] on the same
//!   floats), so one-move results are bit-identical to `v`/`vgl`/`vgh`
//!   on every backend, cache hit or miss — property-tested in
//!   `tests/integration_onemove.rs` across layouts × backends ×
//!   precisions, including accept/reject sequences and grid-cell
//!   boundary positions.
//!
//! # Precision model
//!
//! The crate supports three precision configurations, mirroring
//! QMCPACK's production setup (see [`precision`] for the full model and
//! the derived error budget):
//!
//! * **f64** — tables, kernels and outputs all double precision: the
//!   accuracy reference.
//! * **f32** — tables, kernels and outputs all single precision: the
//!   paper's benchmark configuration (`T = f32` engines over a
//!   [`einspline::MultiCoefs<f32>`] table).
//! * **mixed** — the production trade: coefficients *solved* in `f64`
//!   and *stored* in `f32` ([`einspline::MultiCoefs::downcast`]),
//!   kernels run in `f32` at full SIMD width (twice the lanes of the
//!   f64 path, half the coefficient bandwidth), and every output widens
//!   to `f64` at the engine boundary ([`precision::MixedEngine`], an
//!   [`engine::SpoEngine<f64>`] over any `f32` inner engine, scalar and
//!   batched). Downstream reductions (miniqmc determinants, drift,
//!   kinetic energy) accumulate in `f64` — the
//!   [`einspline::Real::Accum`] contract.
//!
//! The f32/mixed deviation from the f64 reference is bounded by
//! [`precision::F32_REL_ERROR_BUDGET`] relative to the table's
//! [`precision::spline_scale`]; the bound is derived in the
//! [`precision`] module docs and enforced by
//! `tests/integration_precision.rs` across layouts × kernels × SIMD
//! backends × batch sizes, so the budget is a tested contract, not a
//! comment.
//!
//! # Quick example
//!
//! ```
//! use bspline::prelude::*;
//! use einspline::{Grid1, MultiCoefs};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 48³-style grid (smaller here), 32 orbitals, random coefficients.
//! let g = Grid1::periodic(0.0, 1.0, 12);
//! let mut table = MultiCoefs::<f32>::new(g, g, g, 32);
//! table.fill_random(&mut StdRng::seed_from_u64(42));
//!
//! // Opt A+B: tiled SoA engine with Nb = 8.
//! let engine = BsplineAoSoA::from_multi(&table, 8);
//! let mut out = engine.make_out();
//! engine.vgh([0.3, 0.7, 0.1], &mut out);
//!
//! let value = out.value(5);
//! let grad = out.gradient(5);
//! let lap = out.hessian_trace(5);
//! assert!(value.is_finite() && grad[0].is_finite() && lap.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// The 4-point tensor-product kernels use fixed-trip indexed loops on
// purpose (mirrors the paper's loop structure and vectorizes cleanly).
#![allow(clippy::needless_range_loop)]

pub mod aos;
pub mod aosoa;
pub mod batch;
pub mod blocked;
pub mod engine;
pub mod layout;
pub mod onemove;
pub mod output;
pub mod parallel;
pub mod precision;
pub mod replica;
pub mod service;
pub mod simd;
pub mod soa;
pub mod throughput;
pub mod tuning;
pub mod walker;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aos::BsplineAoS;
    pub use crate::aosoa::BsplineAoSoA;
    pub use crate::batch::{BatchOut, Located, PosBlock};
    pub use crate::blocked::{BlockEngine, BlockedEngine};
    pub use crate::engine::SpoEngine;
    pub use crate::layout::{Kernel, Layout, OptStep};
    pub use crate::onemove::MoveContext;
    pub use crate::output::{WalkerAoS, WalkerSoA, WalkerTiled};
    pub use crate::parallel::{
        run_nested, run_nested_blocked, run_nested_blocked_dynamic, run_nested_dynamic,
        run_walkers_parallel,
    };
    pub use crate::precision::{MixedEngine, MixedOut, F32_REL_ERROR_BUDGET};
    pub use crate::replica::{EngineCell, EngineRef, Replica};
    pub use crate::service::{
        ClientConfig, Failed, RoutingPolicy, ServiceClient, ServiceConfig, ServiceError,
        ServiceFault, ServiceFaultPlan, ServiceHealth, SpoService, StatsSnapshot, Ticket,
    };
    pub use crate::simd::{active_backend, with_backend, Backend as SimdBackend};
    pub use crate::soa::BsplineSoA;
    pub use crate::throughput::Throughput;
    pub use crate::tuning::{
        default_block_budget, default_nested_grain, tune_block_budget, tune_tile_size,
        BlockBudgets, TuneConfig, Wisdom,
    };
    pub use crate::walker::{DriverConfig, KernelTimes};
}

pub use aos::BsplineAoS;
pub use aosoa::BsplineAoSoA;
pub use batch::{BatchOut, PosBlock};
pub use blocked::BlockedEngine;
pub use engine::SpoEngine;
pub use layout::{Kernel, Layout, OptStep};
pub use onemove::MoveContext;
pub use output::{SoAStreamsMut, WalkerAoS, WalkerSoA, WalkerTiled};
pub use replica::{EngineCell, EngineRef, Replica};
pub use service::{
    ClientConfig, Failed, RoutingPolicy, ServiceClient, ServiceConfig, ServiceError, ServiceFault,
    ServiceFaultPlan, ServiceHealth, SpoService, Ticket,
};
pub use soa::BsplineSoA;
pub use throughput::Throughput;
