//! `bspline` — multi-orbital B-spline SPO evaluation engines.
//!
//! This crate is the primary contribution of *"Optimization and
//! parallelization of B-spline based orbital evaluations in QMC on
//! multi/many-core shared memory processors"* (Mathuriya, Luo, Benali,
//! Shulenburger, Kim — IPDPS 2017) rebuilt in portable Rust:
//!
//! | paper | here |
//! |---|---|
//! | `BsplineAoS` baseline (Fig. 4a) | [`aos::BsplineAoS`] |
//! | Opt A: AoS→SoA outputs (Fig. 4b) | [`soa::BsplineSoA`] |
//! | Opt B: AoSoA tiling (Fig. 5b/6) | [`aosoa::BsplineAoSoA`] |
//! | Opt C: nested threading (Sec. V-C) | [`parallel::run_nested`] |
//! | miniQMC driver (Fig. 3) | [`walker`] |
//! | multi-walker batching (Fig. 6 loop order) | [`batch`] |
//! | explicit vectorization (Fig. 6–7, Table 4) | [`simd`] |
//! | throughput metric `T = Nw·N/t` | [`throughput::Throughput`] |
//!
//! The hot inner loops are explicit SIMD micro-kernels ([`simd`]):
//! a lane abstraction ([`simd::SimdReal`]) with AVX2+FMA and SSE2
//! `std::arch` backends plus a portable scalar-array fallback, selected
//! once at runtime by CPU detection (override with
//! `QMC_SIMD=avx2|sse2|scalar` for A/B testing, or disable the whole
//! layer with `--no-default-features`). All backends perform the same
//! elementwise operation chain, so fused backends are bit-identical to
//! the portable reference — the paper's "high SIMD efficiency on
//! aligned, padded streams" realized with hand-written kernels where
//! auto-vectorization falls short (`mul_add` on a baseline x86-64
//! target lowers to a libm call that blocks vectorization).
//!
//! # The batched multi-walker API
//!
//! Every engine exposes `v_batch` / `vgl_batch` / `vgh_batch` (and a
//! kernel-dispatched `eval_batch`) next to the scalar entry points:
//!
//! * **Block layout.** Positions travel as a [`batch::PosBlock`] — one
//!   unit-stride stream per coordinate (the SoA transformation applied
//!   to the *input* side). Results land in a [`batch::BatchOut`]: one
//!   per-position output block, indexable after the call.
//! * **Buffer ownership.** The *caller* owns the output allocation:
//!   [`engine::SpoEngine::make_batch_out`] allocates once, batched calls
//!   only overwrite. Drivers reuse one `BatchOut` across every
//!   generation (and across the ragged tail of a chunked stream — extra
//!   blocks are simply left untouched).
//! * **What the engines hoist.** All three engines locate the grid cell
//!   and build the three `BasisWeights` blocks once per position, up
//!   front, instead of inside the kernel. For [`aos::BsplineAoS`] the
//!   batched VGL also hoists the baseline's per-call scratch allocation
//!   across the block.
//! * **Why tile-major batching helps AoSoA.** The scalar path is
//!   position-major: every position touches all `M` coefficient tiles
//!   before the next position, so each tile's `4·Ng·Nb` input block is
//!   re-fetched per position. The batched path transposes the loops
//!   (tiles outer, positions inner — the actual Fig. 6 order): one
//!   tile's coefficient block and `Nb`-sized output stripes stay
//!   cache-hot for the whole batch, and the per-position basis weights
//!   are shared by all tiles instead of recomputed `M` times.
//!
//! Results are **bit-identical** to the scalar loop (the batched paths
//! reorder only independent work), which the workspace property tests
//! assert for all layouts and batch sizes including 0 and 1.
//!
//! # Precision model
//!
//! The crate supports three precision configurations, mirroring
//! QMCPACK's production setup (see [`precision`] for the full model and
//! the derived error budget):
//!
//! * **f64** — tables, kernels and outputs all double precision: the
//!   accuracy reference.
//! * **f32** — tables, kernels and outputs all single precision: the
//!   paper's benchmark configuration (`T = f32` engines over a
//!   [`einspline::MultiCoefs<f32>`] table).
//! * **mixed** — the production trade: coefficients *solved* in `f64`
//!   and *stored* in `f32` ([`einspline::MultiCoefs::downcast`]),
//!   kernels run in `f32` at full SIMD width (twice the lanes of the
//!   f64 path, half the coefficient bandwidth), and every output widens
//!   to `f64` at the engine boundary ([`precision::MixedEngine`], an
//!   [`engine::SpoEngine<f64>`] over any `f32` inner engine, scalar and
//!   batched). Downstream reductions (miniqmc determinants, drift,
//!   kinetic energy) accumulate in `f64` — the
//!   [`einspline::Real::Accum`] contract.
//!
//! The f32/mixed deviation from the f64 reference is bounded by
//! [`precision::F32_REL_ERROR_BUDGET`] relative to the table's
//! [`precision::spline_scale`]; the bound is derived in the
//! [`precision`] module docs and enforced by
//! `tests/integration_precision.rs` across layouts × kernels × SIMD
//! backends × batch sizes, so the budget is a tested contract, not a
//! comment.
//!
//! # Quick example
//!
//! ```
//! use bspline::prelude::*;
//! use einspline::{Grid1, MultiCoefs};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 48³-style grid (smaller here), 32 orbitals, random coefficients.
//! let g = Grid1::periodic(0.0, 1.0, 12);
//! let mut table = MultiCoefs::<f32>::new(g, g, g, 32);
//! table.fill_random(&mut StdRng::seed_from_u64(42));
//!
//! // Opt A+B: tiled SoA engine with Nb = 8.
//! let engine = BsplineAoSoA::from_multi(&table, 8);
//! let mut out = engine.make_out();
//! engine.vgh([0.3, 0.7, 0.1], &mut out);
//!
//! let value = out.value(5);
//! let grad = out.gradient(5);
//! let lap = out.hessian_trace(5);
//! assert!(value.is_finite() && grad[0].is_finite() && lap.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// The 4-point tensor-product kernels use fixed-trip indexed loops on
// purpose (mirrors the paper's loop structure and vectorizes cleanly).
#![allow(clippy::needless_range_loop)]

pub mod aos;
pub mod aosoa;
pub mod batch;
pub mod engine;
pub mod layout;
pub mod output;
pub mod parallel;
pub mod precision;
pub mod simd;
pub mod soa;
pub mod throughput;
pub mod tuning;
pub mod walker;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::aos::BsplineAoS;
    pub use crate::aosoa::BsplineAoSoA;
    pub use crate::batch::{BatchOut, PosBlock};
    pub use crate::engine::SpoEngine;
    pub use crate::layout::{Kernel, Layout, OptStep};
    pub use crate::output::{WalkerAoS, WalkerSoA, WalkerTiled};
    pub use crate::parallel::{run_nested, run_nested_dynamic, run_walkers_parallel};
    pub use crate::precision::{MixedEngine, MixedOut, F32_REL_ERROR_BUDGET};
    pub use crate::simd::{active_backend, with_backend, Backend as SimdBackend};
    pub use crate::soa::BsplineSoA;
    pub use crate::throughput::Throughput;
    pub use crate::tuning::{default_nested_grain, tune_tile_size, TuneConfig, Wisdom};
    pub use crate::walker::{DriverConfig, KernelTimes};
}

pub use aos::BsplineAoS;
pub use aosoa::BsplineAoSoA;
pub use batch::{BatchOut, PosBlock};
pub use engine::SpoEngine;
pub use layout::{Kernel, Layout, OptStep};
pub use output::{WalkerAoS, WalkerSoA, WalkerTiled};
pub use soa::BsplineSoA;
pub use throughput::Throughput;
