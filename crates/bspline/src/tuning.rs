//! Tile-size auto-tuning — the paper's plan "to provide an auto-tuning
//! capability using miniQMC to guide the production runs similar to
//! FFTW's solution using wisdom files" (Sec. VI).
//!
//! [`tune_tile_size`] measures a candidate sweep on the current machine
//! and returns the best `Nb`; [`Wisdom`] caches tuning outcomes keyed by
//! (kernel, grid, N) in a plain-text format so production runs can skip
//! the sweep. The optimal tile size is a property of the cache
//! hierarchy, not the problem size (paper Sec. VI-B), so wisdom learned
//! on one problem transfers to others on the same machine.

use crate::aosoa::BsplineAoSoA;
use crate::layout::Kernel;

/// Default work-queue grain for
/// [`run_nested_dynamic`](crate::parallel::run_nested_dynamic) when the
/// tiles partition evenly across threads. Measured with the `ablations`
/// bench (`nested_batched_*uniform16*` rows): with no ragged remainder
/// the queue only adds per-pop overhead, so a coarser grain wins —
/// grain 4 ran ~2–4% faster than grain 1 (89.6µs vs 91.4µs/iter) and
/// matched the static partition. (Bench host was single-core, so this
/// isolates the queue-overhead component; the load-balance component
/// needs the many-core validation still open in ROADMAP.)
pub const NESTED_DYNAMIC_GRAIN_UNIFORM: usize = 4;

/// Default work-queue grain for
/// [`run_nested_dynamic`](crate::parallel::run_nested_dynamic) on
/// *ragged* tile counts (static partitioning leaves a remainder).
/// Measured with the `ablations` bench (`nested_batched_*ragged13*`
/// rows): single-tile work items edged out grain 4 (72.0µs vs
/// 72.9µs/iter) and beat the static partition by ~5%, and raggedness
/// is exactly the case where fine-grained stealing pays once threads
/// contend for the remainder.
pub const NESTED_DYNAMIC_GRAIN_RAGGED: usize = 1;

/// The measured per-workload grain default for
/// [`run_nested_dynamic`](crate::parallel::run_nested_dynamic): fine
/// grain on ragged tile counts (load balance dominates), coarse grain
/// when the partition is even (queue overhead dominates).
pub fn default_nested_grain(n_tiles: usize, n_threads: usize) -> usize {
    let workers = n_threads.max(1).min(n_tiles.max(1));
    if n_tiles.is_multiple_of(workers) {
        NESTED_DYNAMIC_GRAIN_UNIFORM
    } else {
        NESTED_DYNAMIC_GRAIN_RAGGED
    }
}
use crate::batch::PosBlock;
use crate::blocked::BlockedEngine;
use crate::engine::SpoEngine;
use crate::walker::random_positions;
use einspline::multi::MultiCoefs;
use einspline::Real;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Orbital-block budget tuning (the blocked-engine counterpart of the
// tile-size sweep below).

/// Fallback L2 size when sysfs is unreadable (bytes).
const FALLBACK_L2: usize = 1 << 20;
/// Fallback shared-LLC size when sysfs is unreadable (bytes).
const FALLBACK_L3: usize = 32 << 20;

/// The live sysfs root the cache and NUMA probes read under.
const SYSFS_ROOT: &str = "/sys/devices/system";

/// Parse a sysfs cache-size string (`"2048K"`, `"260M"`).
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1024),
        b'M' | b'm' => (&s[..s.len() - 1], 1024 * 1024),
        b'G' | b'g' => (&s[..s.len() - 1], 1024 * 1024 * 1024),
        _ => (s, 1),
    };
    digits.trim().parse::<usize>().ok().map(|v| v * mult)
}

/// Read `<root>/cpu/cpu0/cache/index{index}/size` — the injectable-root
/// core of [`read_cache_size`], unit-testable against fixture trees
/// (missing files and garbage sizes both yield `None`, so the callers'
/// fallbacks apply).
fn read_cache_size_at(root: &std::path::Path, index: usize) -> Option<usize> {
    let path = root.join(format!("cpu/cpu0/cache/index{index}/size"));
    parse_cache_size(&std::fs::read_to_string(path).ok()?)
}

fn read_cache_size(index: usize) -> Option<usize> {
    read_cache_size_at(std::path::Path::new(SYSFS_ROOT), index)
}

/// The three block-budget candidates of the paper's sizing story:
/// private L2 (per-core residency), shared LLC divided by the worker
/// count (each nested thread's fair slice), and the whole table (B = 1,
/// the monolithic engine as a degenerate decomposition).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockBudgets {
    /// Private per-core L2 size in bytes.
    pub l2: usize,
    /// Shared last-level cache divided by the active worker count.
    pub l3_per_core: usize,
    /// The full coefficient-table footprint (yields B = 1).
    pub whole_table: usize,
}

impl BlockBudgets {
    /// Detect from sysfs (`cpu0/cache/index{2,3}/size`), with
    /// conservative fallbacks (1 MiB / 32 MiB) off-Linux, and the
    /// worker count from `rayon::current_num_threads()` (which honors
    /// `QMC_THREADS`, so tuning runs are pinnable).
    pub fn detect(table_bytes: usize) -> Self {
        Self::detect_at(
            std::path::Path::new(SYSFS_ROOT),
            table_bytes,
            rayon::current_num_threads(),
        )
    }

    /// The injectable-root core of [`BlockBudgets::detect`]: read the
    /// cache sizes under `root` (a sysfs tree or a test fixture) and
    /// divide the LLC among `workers`. Missing or unparsable size files
    /// fall back exactly as the live path does.
    pub fn detect_at(root: &std::path::Path, table_bytes: usize, workers: usize) -> Self {
        let l2 = read_cache_size_at(root, 2).unwrap_or(FALLBACK_L2);
        let l3 = read_cache_size_at(root, 3).unwrap_or(FALLBACK_L3);
        let cores = workers.max(1);
        Self {
            l2: l2.max(1),
            l3_per_core: (l3 / cores).max(1),
            whole_table: table_bytes.max(1),
        }
    }

    /// The sweep order: L2, LLC/cores, whole table.
    pub fn candidates(&self) -> [usize; 3] {
        [self.l2, self.l3_per_core, self.whole_table]
    }
}

// ---------------------------------------------------------------------------
// NUMA-domain detection (the sharding counterpart of the cache probes
// above; consumed by the service router's shard resolution).

/// Count the memory domains under `<root>/node` (`node0`, `node1`, …) —
/// the injectable-root core of [`numa_domains`], unit-testable against
/// fixture trees. A missing or empty node directory reads as one
/// domain (UMA / off-Linux).
pub fn numa_domains_at(root: &std::path::Path) -> usize {
    let Ok(entries) = std::fs::read_dir(root.join("node")) else {
        return 1;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.strip_prefix("node").is_some_and(|rest| {
                !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit())
            })
        })
        .count()
        .max(1)
}

/// Strict parse of a `QMC_NUMA_DOMAINS` override: a positive decimal
/// domain count. Garbage or zero panics naming the variable (the same
/// contract as the rayon stub's `QMC_THREADS`) — a silently ignored
/// typo would fall back to single-domain FIFO routing and quietly
/// invalidate a routed measurement.
fn parse_numa_domains(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(0) => panic!("QMC_NUMA_DOMAINS must be at least 1, got 0"),
        Ok(n) => n,
        Err(_) => panic!("QMC_NUMA_DOMAINS must be a positive integer, got {raw:?}"),
    }
}

/// The NUMA-domain count shard routing resolves against:
/// `QMC_NUMA_DOMAINS` when set (strictly parsed, so multi-domain
/// routing is exercisable on a single-domain host), else the sysfs
/// node count (`/sys/devices/system/node/node*`), else 1. Cached for
/// the process lifetime like the rayon stub's thread count.
pub fn numa_domains() -> usize {
    static DOMAINS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DOMAINS.get_or_init(|| match std::env::var("QMC_NUMA_DOMAINS") {
        Ok(raw) => parse_numa_domains(&raw),
        Err(_) => numa_domains_at(std::path::Path::new(SYSFS_ROOT)),
    })
}

/// Outcome of a block-budget sweep.
#[derive(Clone, Debug)]
pub struct BlockTuneResult {
    /// The winning byte budget.
    pub best_budget: usize,
    /// The block width that budget produced on the tuned table.
    pub best_nb: usize,
    /// `(budget, nb, orbital evaluations per second)` per candidate
    /// (deduplicated: budgets resolving to the same nb measure once).
    pub sweep: Vec<(usize, usize, f64)>,
}

/// Measure the blocked engine's batched (block-major) throughput at
/// each candidate budget of [`BlockBudgets::detect`] and return the
/// fastest — the autotuner that picks the blocked engine's default
/// decomposition on a new host. Construction cost is excluded (tables
/// are built once per candidate outside the timed region), matching
/// production use where the decomposition is built once per run.
pub fn tune_block_budget<T: Real>(
    coefs: &MultiCoefs<T>,
    kernel: Kernel,
    cfg: &TuneConfig,
) -> BlockTuneResult {
    let budgets = BlockBudgets::detect(coefs.bytes());
    let n = coefs.n_splines();
    let (gx, gy, gz) = coefs.grids();
    let domain = [
        (gx.start(), gx.end()),
        (gy.start(), gy.end()),
        (gz.start(), gz.end()),
    ];
    let mut rng = crate::walker::walker_rng(cfg.seed, 0);
    let positions: Vec<[T; 3]> = random_positions(&mut rng, cfg.ns, domain);
    let block: PosBlock<T> = positions.iter().copied().collect();

    let mut sweep: Vec<(usize, usize, f64)> = Vec::new();
    let mut best = (0usize, 0usize, 0.0f64);
    for budget in budgets.candidates() {
        let nb = coefs.block_splines_for_budget(budget);
        if sweep.iter().any(|&(_, done_nb, _)| done_nb == nb) {
            continue;
        }
        let engine = BlockedEngine::from_multi(coefs, budget);
        let mut out = engine.make_batch_out(block.len());
        engine.eval_batch_blocked(kernel, &block, &mut out); // warm-up
        let mut best_t = f64::INFINITY;
        for _ in 0..cfg.reps {
            let t0 = Instant::now();
            engine.eval_batch_blocked(kernel, &block, &mut out);
            best_t = best_t.min(t0.elapsed().as_secs_f64());
        }
        let ops = (n * cfg.ns) as f64 / best_t;
        sweep.push((budget, nb, ops));
        if ops > best.2 {
            best = (budget, nb, ops);
        }
    }
    BlockTuneResult {
        best_budget: best.0,
        best_nb: best.1,
        sweep,
    }
}

/// The block budget production runs should use for a table of
/// `table_bytes` when no per-host sweep has run — the outcome the
/// `{L2, LLC/workers, whole-table}` sweep measured on the
/// recorded-baseline host (single-core AVX2 Xeon, 2 MiB L2, 260 MiB
/// LLC, `QMC_THREADS=4`; 32³ grid, f32, VGH, walkers = 4, ns = 512
/// per generation):
///
/// * **Table > LLC** (N = 2048, 334 MiB): **LLC/workers** wins
///   (65 MiB → nb = 384, B = 6): one nested generation ran
///   23.2 M-evals/s vs the monolithic engine's 17.7 — **1.31×** on
///   the recorded `BENCH_BASELINE.json` rows (1.24–1.46× across
///   `blocked_scaling` example sweeps on this noisy shared host) —
///   because a generation's positions re-touch each block's slab
///   while it is LLC-resident, where the monolithic slab thrashes.
///   The whole-table budget measured 0.97× (decomposition overhead
///   only) and the L2 budget 0.94× (nb = 16 blocks pay per-block loop
///   overhead that this flat-LLC host's cache hierarchy never pays
///   back).
/// * **Table ≤ LLC** (N = 512, 83 MiB): **whole table** (B = 1) wins —
///   blocking has nothing to gain below the LLC, and an LLC/workers
///   split measured 0.89× (decomposition overhead only). Hence the
///   returned budget is the table itself whenever it already fits the
///   shared LLC.
pub fn default_block_budget(table_bytes: usize) -> usize {
    let llc = read_cache_size(3).unwrap_or(FALLBACK_L3);
    if table_bytes <= llc {
        return table_bytes.max(1); // fits the shared LLC: B = 1
    }
    let cores = rayon::current_num_threads().max(1);
    (llc / cores).max(1)
}

/// Parameters of one tuning run.
#[derive(Clone, Copy, Debug)]
pub struct TuneConfig {
    /// Random positions per repetition (the paper's ns; the touched
    /// working set scales with it, so use production-like values).
    pub ns: usize,
    /// Timed repetitions per candidate (best-of).
    pub reps: usize,
    /// RNG seed for the position set.
    pub seed: u64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        Self {
            ns: 128,
            reps: 3,
            seed: 0x715e,
        }
    }
}

/// Result of a tuning sweep.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The winning tile size.
    pub best_nb: usize,
    /// `(Nb, orbital evaluations per second)` for every candidate.
    pub sweep: Vec<(usize, f64)>,
}

/// Measure every candidate tile size with the tile-major batch loop and
/// return the fastest. Candidates larger than N are skipped; the
/// untiled case can be included by passing `n_splines` itself.
pub fn tune_tile_size<T: Real>(
    coefs: &MultiCoefs<T>,
    kernel: Kernel,
    candidates: &[usize],
    cfg: &TuneConfig,
) -> TuneResult {
    let n = coefs.n_splines();
    let (gx, gy, gz) = coefs.grids();
    let domain = [
        (gx.start(), gx.end()),
        (gy.start(), gy.end()),
        (gz.start(), gz.end()),
    ];
    let mut rng = crate::walker::walker_rng(cfg.seed, 0);
    let positions: Vec<[T; 3]> = random_positions(&mut rng, cfg.ns, domain);

    let mut sweep = Vec::new();
    let mut best = (0usize, 0.0f64);
    for &nb in candidates {
        if nb == 0 || nb > n {
            continue;
        }
        let engine = BsplineAoSoA::from_multi(coefs, nb);
        let mut out = engine.make_out();
        engine.eval_batch_tile_major(kernel, &positions, &mut out); // warm-up
        let mut best_t = f64::INFINITY;
        for _ in 0..cfg.reps {
            let t0 = Instant::now();
            engine.eval_batch_tile_major(kernel, &positions, &mut out);
            best_t = best_t.min(t0.elapsed().as_secs_f64());
        }
        let ops = (n * cfg.ns) as f64 / best_t;
        sweep.push((nb, ops));
        if ops > best.1 {
            best = (nb, ops);
        }
    }
    assert!(!sweep.is_empty(), "no valid tile-size candidates");
    TuneResult {
        best_nb: best.0,
        sweep,
    }
}

/// The default candidate ladder (powers of two from 16, as in the
/// paper's Fig. 7c sweep).
pub fn default_candidates(n: usize) -> Vec<usize> {
    let mut c = Vec::new();
    let mut nb = 16;
    while nb <= n {
        c.push(nb);
        nb *= 2;
    }
    if c.last() != Some(&n) {
        c.push(n);
    }
    c
}

/// A wisdom key: the tuning context that the optimal tile depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct WisdomKey {
    /// Which kernel was tuned.
    pub kernel_tag: u8,
    /// Grid dimensions.
    pub grid: (usize, usize, usize),
    /// Problem size N.
    pub n_splines: usize,
}

impl WisdomKey {
    fn kernel_tag(kernel: Kernel) -> u8 {
        match kernel {
            Kernel::V => 0,
            Kernel::Vgl => 1,
            Kernel::Vgh => 2,
        }
    }
}

/// Persistent tuning knowledge (FFTW-wisdom-style).
///
/// Serialized as one line per entry:
/// `kernel grid_x grid_y grid_z n_splines best_nb`.
#[derive(Clone, Debug, Default)]
pub struct Wisdom {
    entries: BTreeMap<WisdomKey, usize>,
}

impl Wisdom {
    /// Empty wisdom.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record a tuned tile size.
    pub fn record<T: Real>(&mut self, coefs: &MultiCoefs<T>, kernel: Kernel, best_nb: usize) {
        let (gx, gy, gz) = coefs.grids();
        self.entries.insert(
            WisdomKey {
                kernel_tag: WisdomKey::kernel_tag(kernel),
                grid: (gx.num(), gy.num(), gz.num()),
                n_splines: coefs.n_splines(),
            },
            best_nb,
        );
    }

    /// Exact lookup.
    pub fn lookup<T: Real>(&self, coefs: &MultiCoefs<T>, kernel: Kernel) -> Option<usize> {
        let (gx, gy, gz) = coefs.grids();
        self.entries
            .get(&WisdomKey {
                kernel_tag: WisdomKey::kernel_tag(kernel),
                grid: (gx.num(), gy.num(), gz.num()),
                n_splines: coefs.n_splines(),
            })
            .copied()
    }

    /// Fuzzy lookup: the optimal Nb is problem-size independent, so fall
    /// back to any entry with the same kernel and grid (paper Sec. VI-B:
    /// "tuned once for each architecture").
    pub fn lookup_any_n<T: Real>(
        &self,
        coefs: &MultiCoefs<T>,
        kernel: Kernel,
    ) -> Option<usize> {
        self.lookup(coefs, kernel).or_else(|| {
            let (gx, gy, gz) = coefs.grids();
            let tag = WisdomKey::kernel_tag(kernel);
            let grid = (gx.num(), gy.num(), gz.num());
            self.entries
                .iter()
                .find(|(k, _)| k.kernel_tag == tag && k.grid == grid)
                .map(|(k, &nb)| nb.min(coefs.n_splines().max(k.n_splines.min(nb))))
        })
    }

    /// Tune if unknown, then remember (the FFTW `plan` pattern).
    pub fn tile_size_for<T: Real>(
        &mut self,
        coefs: &MultiCoefs<T>,
        kernel: Kernel,
        cfg: &TuneConfig,
    ) -> usize {
        if let Some(nb) = self.lookup(coefs, kernel) {
            return nb;
        }
        let result = tune_tile_size(
            coefs,
            kernel,
            &default_candidates(coefs.n_splines()),
            cfg,
        );
        self.record(coefs, kernel, result.best_nb);
        result.best_nb
    }
}

impl fmt::Display for Wisdom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, nb) in &self.entries {
            writeln!(
                f,
                "{} {} {} {} {} {}",
                k.kernel_tag, k.grid.0, k.grid.1, k.grid.2, k.n_splines, nb
            )?;
        }
        Ok(())
    }
}

impl FromStr for Wisdom {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut w = Wisdom::new();
        for (lineno, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<usize> = line
                .split_whitespace()
                .map(|t| t.parse().map_err(|e| format!("line {}: {e}", lineno + 1)))
                .collect::<Result<_, _>>()?;
            if fields.len() != 6 {
                return Err(format!("line {}: expected 6 fields", lineno + 1));
            }
            w.entries.insert(
                WisdomKey {
                    kernel_tag: fields[0] as u8,
                    grid: (fields[1], fields[2], fields[3]),
                    n_splines: fields[4],
                },
                fields[5],
            );
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use einspline::Grid1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize) -> MultiCoefs<f32> {
        let g = Grid1::periodic(0.0, 1.0, 8);
        let mut m = MultiCoefs::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(4));
        m
    }

    fn quick_cfg() -> TuneConfig {
        TuneConfig {
            ns: 4,
            reps: 1,
            seed: 1,
        }
    }

    #[test]
    fn tuner_returns_a_candidate() {
        let t = table(64);
        let r = tune_tile_size(&t, Kernel::Vgh, &[16, 32, 64], &quick_cfg());
        assert!([16, 32, 64].contains(&r.best_nb));
        assert_eq!(r.sweep.len(), 3);
        for (_, ops) in &r.sweep {
            assert!(*ops > 0.0);
        }
    }

    #[test]
    fn oversized_candidates_are_skipped() {
        let t = table(32);
        let r = tune_tile_size(&t, Kernel::V, &[16, 32, 512], &quick_cfg());
        assert_eq!(r.sweep.len(), 2);
    }

    #[test]
    fn default_candidate_ladder() {
        assert_eq!(default_candidates(128), vec![16, 32, 64, 128]);
        assert_eq!(default_candidates(100), vec![16, 32, 64, 100]);
        assert_eq!(default_candidates(16), vec![16]);
    }

    #[test]
    fn wisdom_roundtrip_through_text() {
        let t = table(64);
        let mut w = Wisdom::new();
        w.record(&t, Kernel::Vgh, 32);
        w.record(&t, Kernel::V, 64);
        let text = w.to_string();
        let w2: Wisdom = text.parse().expect("parse");
        assert_eq!(w2.len(), 2);
        assert_eq!(w2.lookup(&t, Kernel::Vgh), Some(32));
        assert_eq!(w2.lookup(&t, Kernel::V), Some(64));
        assert_eq!(w2.lookup(&t, Kernel::Vgl), None);
    }

    #[test]
    fn wisdom_rejects_bad_text() {
        assert!("1 2 3".parse::<Wisdom>().is_err());
        assert!("a b c d e f".parse::<Wisdom>().is_err());
        let ok: Wisdom = "# comment\n\n2 8 8 8 64 32\n".parse().unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn fuzzy_lookup_transfers_across_n() {
        let t64 = table(64);
        let t128 = table(128);
        let mut w = Wisdom::new();
        w.record(&t64, Kernel::Vgh, 32);
        assert_eq!(w.lookup(&t128, Kernel::Vgh), None);
        assert_eq!(w.lookup_any_n(&t128, Kernel::Vgh), Some(32));
    }

    #[test]
    fn grain_defaults_follow_raggedness() {
        // 16 tiles on 4 threads: even partition → coarse grain.
        assert_eq!(default_nested_grain(16, 4), NESTED_DYNAMIC_GRAIN_UNIFORM);
        // 13 tiles on 4 threads: ragged → single-tile grain.
        assert_eq!(default_nested_grain(13, 4), NESTED_DYNAMIC_GRAIN_RAGGED);
        // More threads than tiles: every thread gets ≤1 tile, even.
        assert_eq!(default_nested_grain(2, 8), NESTED_DYNAMIC_GRAIN_UNIFORM);
        // Degenerate inputs must not panic.
        assert_eq!(default_nested_grain(0, 0), NESTED_DYNAMIC_GRAIN_UNIFORM);
    }

    #[test]
    fn cache_size_strings_parse() {
        assert_eq!(parse_cache_size("2048K"), Some(2 << 20));
        assert_eq!(parse_cache_size("260M\n"), Some(260 << 20));
        assert_eq!(parse_cache_size("1G"), Some(1 << 30));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("x"), None);
        // Suffix variants sysfs trees show in the wild: lower-case,
        // surrounding whitespace, and non-suffix garbage.
        assert_eq!(parse_cache_size("64k"), Some(64 << 10));
        assert_eq!(parse_cache_size(" 3072K \n"), Some(3 << 20));
        assert_eq!(parse_cache_size("2048KB"), None);
        assert_eq!(parse_cache_size("lots"), None);
        assert_eq!(parse_cache_size(""), None);
        assert_eq!(parse_cache_size("-1K"), None);
    }

    /// Build a throwaway sysfs-shaped fixture tree; each test gets its
    /// own directory so parallel test threads never collide.
    fn fixture_root(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!(
            "qmc-tuning-fixture-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        root
    }

    fn write_fixture(root: &std::path::Path, rel: &str, contents: &str) {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("fixture file has a parent"))
            .expect("create fixture dirs");
        std::fs::write(path, contents).expect("write fixture file");
    }

    #[test]
    fn detect_reads_a_well_formed_fixture_tree() {
        let root = fixture_root("well-formed");
        write_fixture(&root, "cpu/cpu0/cache/index2/size", "2048K\n");
        write_fixture(&root, "cpu/cpu0/cache/index3/size", "105M\n");
        let b = BlockBudgets::detect_at(&root, 1 << 30, 4);
        assert_eq!(b.l2, 2 << 20);
        assert_eq!(b.l3_per_core, (105 << 20) / 4);
        assert_eq!(b.whole_table, 1 << 30);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn detect_falls_back_on_missing_files() {
        let root = fixture_root("missing");
        // index2 exists, index3 does not: L2 parsed, LLC falls back.
        write_fixture(&root, "cpu/cpu0/cache/index2/size", "512K");
        let b = BlockBudgets::detect_at(&root, 4096, 1);
        assert_eq!(b.l2, 512 << 10);
        assert_eq!(b.l3_per_core, FALLBACK_L3);
        // An entirely absent tree falls back on both levels.
        let b = BlockBudgets::detect_at(&root.join("no-such-subtree"), 4096, 1);
        assert_eq!(b.l2, FALLBACK_L2);
        assert_eq!(b.l3_per_core, FALLBACK_L3);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn detect_falls_back_on_garbage_sizes() {
        let root = fixture_root("garbage");
        write_fixture(&root, "cpu/cpu0/cache/index2/size", "lots\n");
        write_fixture(&root, "cpu/cpu0/cache/index3/size", "64QB");
        let b = BlockBudgets::detect_at(&root, 4096, 2);
        assert_eq!(b.l2, FALLBACK_L2);
        assert_eq!(b.l3_per_core, FALLBACK_L3 / 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn numa_domains_counts_node_dirs() {
        let root = fixture_root("numa");
        for d in ["node/node0", "node/node1", "node/node12"] {
            std::fs::create_dir_all(root.join(d)).expect("node dir");
        }
        // Non-node entries are ignored: files, other names, bare "node".
        std::fs::create_dir_all(root.join("node/possible")).expect("dir");
        std::fs::create_dir_all(root.join("node/nodeX")).expect("dir");
        write_fixture(&root, "node/online", "0-2\n");
        assert_eq!(numa_domains_at(&root), 3);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn numa_domains_missing_tree_is_single_domain() {
        let root = fixture_root("numa-missing");
        assert_eq!(numa_domains_at(&root), 1);
        // An empty node dir also reads as UMA.
        std::fs::create_dir_all(root.join("node")).expect("dir");
        assert_eq!(numa_domains_at(&root), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn numa_override_parses_strictly() {
        assert_eq!(parse_numa_domains("2"), 2);
        assert_eq!(parse_numa_domains(" 8\n"), 8);
    }

    #[test]
    #[should_panic(expected = "QMC_NUMA_DOMAINS must be a positive integer")]
    fn numa_override_rejects_garbage() {
        parse_numa_domains("two");
    }

    #[test]
    #[should_panic(expected = "QMC_NUMA_DOMAINS must be at least 1")]
    fn numa_override_rejects_zero() {
        parse_numa_domains("0");
    }

    #[test]
    fn block_budgets_are_positive_and_ordered_sensibly() {
        let b = BlockBudgets::detect(123_456);
        assert!(b.l2 >= 1);
        assert!(b.l3_per_core >= 1);
        assert_eq!(b.whole_table, 123_456);
        assert_eq!(b.candidates().len(), 3);
        // Sub-LLC tables get the whole-table budget (B = 1)…
        assert_eq!(default_block_budget(1024), 1024);
        // …and only super-LLC tables a strict decomposition.
        assert!(default_block_budget(usize::MAX) < usize::MAX);
        assert!(default_block_budget(usize::MAX) >= 1);
    }

    #[test]
    fn block_budget_tuner_returns_a_candidate() {
        let t = table(64);
        let r = tune_block_budget(&t, Kernel::Vgh, &quick_cfg());
        assert!(!r.sweep.is_empty());
        assert!(r.best_nb >= 1 && r.best_nb <= 64);
        assert!(r.sweep.iter().any(|&(b, _, _)| b == r.best_budget));
        // The whole-table candidate always resolves to B = 1 (nb = N).
        assert!(r.sweep.iter().any(|&(_, nb, _)| nb == 64));
        // Deduplication: every nb measured at most once.
        let mut nbs: Vec<usize> = r.sweep.iter().map(|&(_, nb, _)| nb).collect();
        nbs.sort_unstable();
        nbs.dedup();
        assert_eq!(nbs.len(), r.sweep.len());
    }

    #[test]
    fn tile_size_for_tunes_once_then_caches() {
        let t = table(32);
        let mut w = Wisdom::new();
        let nb1 = w.tile_size_for(&t, Kernel::Vgl, &quick_cfg());
        assert_eq!(w.len(), 1);
        let nb2 = w.tile_size_for(&t, Kernel::Vgl, &quick_cfg());
        assert_eq!(nb1, nb2);
        assert_eq!(w.len(), 1);
    }
}
