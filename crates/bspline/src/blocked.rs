//! `BlockedEngine` — the orbital-block decomposition: one logical
//! multi-spline object served by `B` independent, cache-budget-sized
//! spline blocks (paper Sec. IV–V: "multiple spline objects … so that
//! the block of read-only coefficient data fits in cache", the substrate
//! of the Fig. 9/10 nested-threading scaling).
//!
//! # How it differs from [`crate::aosoa::BsplineAoSoA`]
//!
//! The AoSoA engine tiles for *SIMD and output locality* and keeps a
//! tiled output type ([`crate::output::WalkerTiled`]); consumers index
//! through an orbital → (tile, offset) map. The blocked engine sits one
//! level up:
//!
//! * **Budget-sized blocks.** The block width comes from a *byte budget*
//!   ([`einspline::MultiCoefs::block_splines_for_budget`]): the widest
//!   block whose standalone coefficient slab fits the target cache
//!   level, quantized to the cache-line padding unit so block tables
//!   carry no padding waste and block boundaries in the contiguous
//!   output stay 64-byte aligned.
//! * **Contiguous caller output.** `Out = `[`WalkerSoA`]` (N orbitals)`:
//!   each block's V/VGL/VGH streams scatter **in place** into the
//!   caller's contiguous streams at the block's orbital offset (a
//!   [`SoAStreamsMut`] sub-range handed to the micro-kernels — no copy,
//!   no gather on the consumer side). miniqmc's `SpoSet` consumes a
//!   blocked engine exactly like a monolithic SoA engine.
//! * **Shared per-position hoist.** The grid locate + basis-weight
//!   blocks ([`Located`]) are computed once per position and reused by
//!   every block (the scalar paths of a naive multi-engine split would
//!   recompute them `B` times).
//! * **Nested-threading unit.** Blocks share nothing and their output
//!   ranges are disjoint, so a walker's evaluation splits across
//!   threads by handing each thread a block range and the matching
//!   [`WalkerSoA::split_streams_mut`] views
//!   ([`crate::parallel::run_nested_blocked`]).
//! * **First-touch placement.** [`BlockedEngine::from_multi`] builds
//!   each block's coefficient table *on the thread that the static
//!   nested schedule assigns the block to*, so on a NUMA host the pages
//!   of a block are first touched (faulted + written) in the domain of
//!   the thread that will stream them. (With the vendored scoped-thread
//!   rayon stub this is an approximation — worker `k` of the stub's
//!   balanced partition owns the same block span every parallel region
//!   of equal width; with real rayon + a pinned pool it is exact.)
//! * **Tile prefetch.** The block-major batch loop issues
//!   `_mm_prefetch` for the *next* block's coefficient runs of the
//!   position at hand while the current block computes (behind the
//!   `simd` feature; a no-op elsewhere).
//!
//! Results are **bit-identical** to the monolithic SoA engine on the
//! *fused* backends (the scalar pack and AVX2+FMA) for every kernel
//! and block width: the per-orbital operation chain only reads that
//! orbital's own coefficient line elements and the shared weights, so
//! splitting the spline dimension reorders nothing. The non-FMA SSE2
//! backend fuses its ragged scalar tail but not its vector body, so a
//! block boundary can move an orbital between those two paths — there
//! the agreement is bounded by the shared scale-aware tolerance
//! instead (`tests/integration_blocked.rs` property-tests both
//! contracts across budgets, including `B = 1`, ragged last blocks and
//! blocks narrower than one SIMD register).

use crate::batch::{check_batch, BatchOut, Located, PosBlock};
use crate::engine::SpoEngine;
use crate::layout::{Kernel, Layout};
use crate::onemove::MoveContext;
use crate::output::{SoAStreamsMut, WalkerSoA};
use crate::soa::BsplineSoA;
use einspline::multi::{BlockedCoefs, MultiCoefs, ShardMap};
use einspline::Real;
use rayon::prelude::*;

/// An engine that can serve as one spline block of a [`BlockedEngine`]:
/// it exposes its coefficient table (shared-grid locate + prefetch) and
/// evaluates through a caller-positioned stream view (the in-place
/// scatter). Implemented by [`BsplineSoA`]; any future engine with SoA
/// semantics (an AVX-512 specialization, say) plugs in the same way.
pub trait BlockEngine: SpoEngine<Self::Scalar, Out = WalkerSoA<Self::Scalar>> {
    /// The scalar (storage + kernel) precision of the block.
    type Scalar: Real;

    /// The block's coefficient table.
    fn block_coefs(&self) -> &MultiCoefs<Self::Scalar>;

    /// Evaluate `kernel` over a pre-located position into the view
    /// (the view length selects how many of this block's orbitals are
    /// written; `≤` the block's padded stride).
    fn eval_streams(
        &self,
        kernel: Kernel,
        loc: &Located<Self::Scalar>,
        out: SoAStreamsMut<'_, Self::Scalar>,
    );
}

impl<T: Real> BlockEngine for BsplineSoA<T> {
    type Scalar = T;

    fn block_coefs(&self) -> &MultiCoefs<T> {
        self.coefs()
    }

    fn eval_streams(&self, kernel: Kernel, loc: &Located<T>, out: SoAStreamsMut<'_, T>) {
        BsplineSoA::eval_streams(self, kernel, loc, out)
    }
}

/// Blocked multi-orbital evaluator: `B` cache-sized spline blocks
/// behind the monolithic [`SpoEngine`] surface (module docs).
#[derive(Clone, Debug)]
pub struct BlockedEngine<E> {
    blocks: Vec<E>,
    /// Orbital offset of each block plus the total: `bounds[b]` is
    /// block `b`'s first global orbital, `bounds[B] = N`.
    bounds: Vec<usize>,
    nb: usize,
    n_splines: usize,
    /// The byte budget the block width was derived from (0 when the
    /// width was given explicitly).
    budget: usize,
}

impl<T: Real> BlockedEngine<BsplineSoA<T>> {
    /// Split `coefs` into blocks whose coefficient slab fits
    /// `budget_bytes` and build one [`BsplineSoA`] per block, each
    /// constructed (allocated **and** written) on the thread the static
    /// nested schedule assigns it to — the first-touch path.
    pub fn from_multi(coefs: &MultiCoefs<T>, budget_bytes: usize) -> Self {
        let nb = coefs.block_splines_for_budget(budget_bytes);
        Self::build(coefs, nb, budget_bytes)
    }

    /// Build with an explicit block width (tests and ablations; no
    /// budget semantics, any `nb ≥ 1` including widths narrower than a
    /// SIMD register).
    pub fn with_block_size(coefs: &MultiCoefs<T>, nb: usize) -> Self {
        assert!(nb > 0, "block width must be positive");
        Self::build(coefs, nb.min(coefs.n_splines()), 0)
    }

    /// Wrap per-block tables split ahead of time
    /// ([`einspline::MultiCoefs::split_blocks`]).
    pub fn from_blocked(blocked: BlockedCoefs<T>) -> Self {
        let nb = blocked.nb();
        let budget = blocked.block_bytes();
        let blocks: Vec<BsplineSoA<T>> =
            blocked.into_blocks().into_iter().map(BsplineSoA::new).collect();
        Self::from_blocks(blocks, nb, budget)
    }

    /// [`BlockedEngine::from_multi`] with the block set built **one
    /// NUMA shard at a time**: domain `d`'s contiguous block range
    /// ([`ShardMap::blocks_of`]) is constructed as its own parallel
    /// pass before the next domain's begins, so on a host whose worker
    /// pool is pinned per domain, every page of a shard's slabs is
    /// first-touched — and therefore placed — in the domain whose
    /// replicas the router will steer at it. (With the vendored
    /// unpinned pool this is an ordering guarantee only, like the
    /// single-pass first-touch path.) The resulting engine is
    /// bit-identical to the single-pass construction.
    pub fn from_multi_sharded(
        coefs: &MultiCoefs<T>,
        budget_bytes: usize,
        shards: &ShardMap,
    ) -> Self {
        let nb = coefs.block_splines_for_budget(budget_bytes);
        let n = coefs.n_splines();
        let n_blocks = n.div_ceil(nb);
        assert_eq!(
            shards.n_blocks(),
            n_blocks,
            "shard map must partition exactly this decomposition's blocks"
        );
        let mut blocks: Vec<BsplineSoA<T>> = Vec::with_capacity(n_blocks);
        for d in 0..shards.n_domains() {
            let ranges: Vec<(usize, usize)> = shards
                .blocks_of(d)
                .map(|b| (b * nb, ((b + 1) * nb).min(n)))
                .collect();
            let built: Vec<BsplineSoA<T>> = ranges
                .into_par_iter()
                .map(|(lo, hi)| BsplineSoA::new(coefs.slice_splines(lo, hi)))
                .collect();
            blocks.extend(built);
        }
        Self::from_blocks(blocks, nb, budget_bytes)
    }

    fn build(coefs: &MultiCoefs<T>, nb: usize, budget: usize) -> Self {
        let n = coefs.n_splines();
        let ranges: Vec<(usize, usize)> = (0..n.div_ceil(nb))
            .map(|b| (b * nb, ((b + 1) * nb).min(n)))
            .collect();
        // Parallel construction = first-touch: the rayon partition that
        // builds block b is the same balanced static partition the
        // nested schedule uses to evaluate it, so each worker writes
        // (first-touches) exactly the slabs it will later stream.
        let blocks: Vec<BsplineSoA<T>> = ranges
            .into_par_iter()
            .map(|(lo, hi)| BsplineSoA::new(coefs.slice_splines(lo, hi)))
            .collect();
        Self::from_blocks(blocks, nb, budget)
    }

    fn from_blocks(blocks: Vec<BsplineSoA<T>>, nb: usize, budget: usize) -> Self {
        assert!(!blocks.is_empty(), "need at least one block");
        let mut bounds = Vec::with_capacity(blocks.len() + 1);
        let mut n_splines = 0;
        bounds.push(0);
        for b in &blocks {
            n_splines += b.n_splines();
            bounds.push(n_splines);
        }
        let g0 = blocks[0].coefs().grids();
        let grids = (*g0.0, *g0.1, *g0.2);
        for b in &blocks[1..] {
            let g = b.coefs().grids();
            assert_eq!((*g.0, *g.1, *g.2), grids, "blocks must share grids");
        }
        Self {
            blocks,
            bounds,
            nb,
            n_splines,
            budget,
        }
    }
}

impl<E> BlockedEngine<E> {
    /// Number of blocks B.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Nominal block width (the last block may hold fewer splines).
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// The byte budget the decomposition was derived from (0 when the
    /// block width was explicit).
    #[inline]
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Per-block engines.
    #[inline]
    pub fn blocks(&self) -> &[E] {
        &self.blocks
    }

    /// Block `b`.
    #[inline]
    pub fn block(&self, b: usize) -> &E {
        &self.blocks[b]
    }

    /// Global orbital range `[lo, hi)` of block `b`.
    #[inline]
    pub fn block_range(&self, b: usize) -> (usize, usize) {
        (self.bounds[b], self.bounds[b + 1])
    }

    /// Global orbital range covered by the contiguous block chunk
    /// `[lo_block, hi_block)` — the nested work-item bound.
    #[inline]
    pub fn chunk_range(&self, lo_block: usize, hi_block: usize) -> (usize, usize) {
        (self.bounds[lo_block], self.bounds[hi_block])
    }

    /// Map a global orbital index to `(block, offset)`.
    #[inline]
    pub fn locate_orbital(&self, n: usize) -> (usize, usize) {
        debug_assert!(n < self.n_splines, "orbital index out of range");
        (n / self.nb, n % self.nb)
    }

    /// Partition this decomposition's blocks across `n_domains` NUMA
    /// domains ([`ShardMap::balanced`]) — the ownership map
    /// [`BlockedEngine::from_multi_sharded`] constructs against.
    pub fn shard_map(&self, n_domains: usize) -> ShardMap {
        ShardMap::balanced(self.blocks.len(), n_domains)
    }
}

impl<E: BlockEngine> BlockedEngine<E> {
    /// Coefficient-slab bytes of the widest block (what the budget
    /// bounded).
    pub fn block_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.block_coefs().bytes())
            .max()
            .unwrap_or(0)
    }

    /// Locate every position of a block against the (shared) grids —
    /// the once-per-position hoist every block reuses.
    #[inline]
    pub fn locate_block(&self, pos: &PosBlock<E::Scalar>) -> Vec<Located<E::Scalar>> {
        Located::block(self.blocks[0].block_coefs(), pos)
    }

    /// Evaluate one block over a pre-located position into the view at
    /// the block's output range — the nested-threading unit of work
    /// (the scheduler owns the view arithmetic; `out.len()` must be
    /// block `b`'s spline count).
    #[inline]
    pub fn eval_block_located(
        &self,
        b: usize,
        kernel: Kernel,
        loc: &Located<E::Scalar>,
        out: SoAStreamsMut<'_, E::Scalar>,
    ) {
        debug_assert_eq!(out.len(), self.bounds[b + 1] - self.bounds[b]);
        self.blocks[b].eval_streams(kernel, loc, out);
    }

    /// Prefetch block `b`'s coefficient runs for `loc` (no-op when `b`
    /// is out of range — callers pass `b + 1` unconditionally).
    #[inline]
    pub(crate) fn prefetch_block(&self, b: usize, loc: &Located<E::Scalar>) {
        if let Some(next) = self.blocks.get(b) {
            crate::simd::prefetch_tile(next.block_coefs(), loc);
        }
    }

    fn check_out(&self, out: &WalkerSoA<E::Scalar>) {
        assert!(
            out.stride() >= self.n_splines,
            "output block ({} orbitals padded) too small for {} orbitals",
            out.stride(),
            self.n_splines
        );
    }

    /// All blocks over one pre-located position, scattered in place.
    pub(crate) fn eval_located_all(
        &self,
        kernel: Kernel,
        loc: &Located<E::Scalar>,
        out: &mut WalkerSoA<E::Scalar>,
    ) {
        self.check_out(out);
        for b in 0..self.blocks.len() {
            let (lo, hi) = self.block_range(b);
            self.prefetch_block(b + 1, loc);
            self.blocks[b].eval_streams(kernel, loc, out.streams_range_mut(lo, hi));
        }
    }

    /// Prefetch one evaluation ahead of `(b, i)` in a block-major sweep
    /// over `locs`: the current block's next position while inside the
    /// block, the next block's first position at the block switch. One
    /// evaluation (`64·nb` coefficient reads) is far enough for the
    /// lines and their TLB entries to arrive, close enough that they
    /// are not evicted before use. `b_end` is the sweep's exclusive
    /// upper block (a nested work item's chunk bound): no prefetch is
    /// issued past it — the next block over the boundary belongs to
    /// another work item, likely streaming its own slab concurrently.
    #[inline]
    pub(crate) fn prefetch_ahead(
        &self,
        b: usize,
        b_end: usize,
        i: usize,
        locs: &[Located<E::Scalar>],
    ) {
        match locs.get(i + 1) {
            Some(next) => self.prefetch_block(b, next),
            None if b + 1 < b_end => {
                if let Some(first) = locs.first() {
                    self.prefetch_block(b + 1, first);
                }
            }
            None => {}
        }
    }

    /// Batched evaluation, **block-major** (the Fig. 6 loop order at
    /// block granularity): one block's coefficient slab serves every
    /// position of the batch before the next block is touched, the
    /// per-position [`Located`] hoist is shared by all blocks, and the
    /// coefficient runs one evaluation ahead are prefetched (the same
    /// block's next position, or the next block's first position at
    /// the block switch).
    pub fn eval_batch_blocked(
        &self,
        kernel: Kernel,
        pos: &PosBlock<E::Scalar>,
        out: &mut BatchOut<WalkerSoA<E::Scalar>>,
    ) {
        check_batch(pos.len(), out.len());
        for o in out.blocks_mut().iter().take(pos.len()) {
            self.check_out(o);
        }
        let locs = self.locate_block(pos);
        let b_end = self.blocks.len();
        for b in 0..b_end {
            let (lo, hi) = self.block_range(b);
            for (i, (loc, block_out)) in locs.iter().zip(out.blocks_mut()).enumerate() {
                self.prefetch_ahead(b, b_end, i, &locs);
                self.blocks[b].eval_streams(kernel, loc, block_out.streams_range_mut(lo, hi));
            }
        }
    }
}

impl<E: BlockEngine> SpoEngine<E::Scalar> for BlockedEngine<E> {
    type Out = WalkerSoA<E::Scalar>;

    fn n_splines(&self) -> usize {
        self.n_splines
    }

    /// Blocked coefficients behind contiguous SoA outputs; reported as
    /// [`Layout::AoSoA`] (the input-side decomposition is the AoSoA
    /// transformation lifted to engine granularity).
    fn layout(&self) -> Layout {
        Layout::AoSoA
    }

    fn domain(&self) -> [(f64, f64); 3] {
        let (gx, gy, gz) = self.blocks[0].block_coefs().grids();
        [
            (gx.start(), gx.end()),
            (gy.start(), gy.end()),
            (gz.start(), gz.end()),
        ]
    }

    fn make_out(&self) -> WalkerSoA<E::Scalar> {
        WalkerSoA::new(self.n_splines)
    }

    fn v(&self, pos: [E::Scalar; 3], out: &mut WalkerSoA<E::Scalar>) {
        let loc = Located::new(self.blocks[0].block_coefs(), pos);
        self.eval_located_all(Kernel::V, &loc, out);
    }

    fn vgl(&self, pos: [E::Scalar; 3], out: &mut WalkerSoA<E::Scalar>) {
        let loc = Located::new(self.blocks[0].block_coefs(), pos);
        self.eval_located_all(Kernel::Vgl, &loc, out);
    }

    fn vgh(&self, pos: [E::Scalar; 3], out: &mut WalkerSoA<E::Scalar>) {
        let loc = Located::new(self.blocks[0].block_coefs(), pos);
        self.eval_located_all(Kernel::Vgh, &loc, out);
    }

    fn v_batch(&self, pos: &PosBlock<E::Scalar>, out: &mut BatchOut<WalkerSoA<E::Scalar>>) {
        self.eval_batch_blocked(Kernel::V, pos, out);
    }

    fn vgl_batch(&self, pos: &PosBlock<E::Scalar>, out: &mut BatchOut<WalkerSoA<E::Scalar>>) {
        self.eval_batch_blocked(Kernel::Vgl, pos, out);
    }

    fn vgh_batch(&self, pos: &PosBlock<E::Scalar>, out: &mut BatchOut<WalkerSoA<E::Scalar>>) {
        self.eval_batch_blocked(Kernel::Vgh, pos, out);
    }

    fn v_one(
        &self,
        ctx: &mut MoveContext<E::Scalar>,
        pos: [E::Scalar; 3],
        out: &mut WalkerSoA<E::Scalar>,
    ) {
        let loc = ctx.located(self.blocks[0].block_coefs(), pos);
        self.eval_located_all(Kernel::V, &loc, out);
    }

    fn vgl_one(
        &self,
        ctx: &mut MoveContext<E::Scalar>,
        pos: [E::Scalar; 3],
        out: &mut WalkerSoA<E::Scalar>,
    ) {
        let loc = ctx.located(self.blocks[0].block_coefs(), pos);
        self.eval_located_all(Kernel::Vgl, &loc, out);
    }

    fn vgh_one(
        &self,
        ctx: &mut MoveContext<E::Scalar>,
        pos: [E::Scalar; 3],
        out: &mut WalkerSoA<E::Scalar>,
    ) {
        let loc = ctx.located(self.blocks[0].block_coefs(), pos);
        self.eval_located_all(Kernel::Vgh, &loc, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use einspline::Grid1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize, seed: u64) -> MultiCoefs<f32> {
        let g = Grid1::periodic(0.0, 1.0, 6);
        let mut m = MultiCoefs::<f32>::new(g, g, g, n);
        m.fill_random(&mut StdRng::seed_from_u64(seed));
        m
    }

    #[test]
    fn blocked_bit_matches_monolithic_soa() {
        let t = table(40, 5);
        let mono = BsplineSoA::new(t.clone());
        let pos = [0.31f32, 0.72, 0.18];
        let mut want = WalkerSoA::new(40);
        for nb in [1usize, 3, 16, 17, 40] {
            let blocked = BlockedEngine::with_block_size(&t, nb);
            let mut got = blocked.make_out();
            for k in Kernel::ALL {
                mono.eval_streams(k, &Located::new(&t, pos), want.streams_range_mut(0, want.stride()));
                blocked.eval(k, pos, &mut got);
                for n in 0..40 {
                    assert_eq!(want.value(n), got.value(n), "{k} nb={nb} n={n}");
                    match k {
                        Kernel::V => {}
                        Kernel::Vgl => {
                            assert_eq!(want.gradient(n), got.gradient(n), "nb={nb} n={n}");
                            assert_eq!(want.laplacian(n), got.laplacian(n), "nb={nb} n={n}");
                        }
                        Kernel::Vgh => {
                            assert_eq!(want.gradient(n), got.gradient(n), "nb={nb} n={n}");
                            assert_eq!(want.hessian(n), got.hessian(n), "nb={nb} n={n}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn budget_construction_reports_shape() {
        let t = table(64, 9);
        // Budget for two 16-spline quanta per block.
        let blocked = BlockedEngine::from_multi(&t, 2 * 16 * t.bytes_per_spline());
        assert_eq!(blocked.nb(), 32);
        assert_eq!(blocked.n_blocks(), 2);
        assert_eq!(SpoEngine::<f32>::n_splines(&blocked), 64);
        assert_eq!(blocked.block_range(1), (32, 64));
        assert_eq!(blocked.chunk_range(0, 2), (0, 64));
        assert_eq!(blocked.locate_orbital(33), (1, 1));
        assert!(blocked.block_bytes() <= blocked.budget_bytes());
        assert_eq!(SpoEngine::<f32>::layout(&blocked), Layout::AoSoA);
        assert_eq!(SpoEngine::<f32>::domain(&blocked)[2], (0.0, 1.0));
    }

    #[test]
    fn batched_matches_scalar_loop_exactly() {
        let t = table(21, 13); // ragged against every lane width
        let blocked = BlockedEngine::with_block_size(&t, 8);
        let block: PosBlock<f32> =
            [[0.1f32, 0.5, 0.9], [0.33, 0.66, 0.05], [0.72, 0.2, 0.48]]
                .into_iter()
                .collect();
        let mut bout = blocked.make_batch_out(block.len());
        blocked.eval_batch(Kernel::Vgh, &block, &mut bout);
        let mut sout = blocked.make_out();
        for (i, p) in block.iter().enumerate() {
            blocked.vgh(p, &mut sout);
            for n in 0..21 {
                assert_eq!(bout.block(i).value(n), sout.value(n), "i={i} n={n}");
                assert_eq!(bout.block(i).hessian(n), sout.hessian(n));
            }
        }
    }

    #[test]
    fn from_blocked_and_first_touch_builds_agree() {
        let t = table(40, 21);
        let serial = BlockedEngine::from_blocked(t.split_blocks(16 * t.bytes_per_spline()));
        let parallel = BlockedEngine::from_multi(&t, 16 * t.bytes_per_spline());
        assert_eq!(serial.n_blocks(), parallel.n_blocks());
        let pos = [0.4f32, 0.8, 0.2];
        let (mut a, mut b) = (serial.make_out(), parallel.make_out());
        serial.vgh(pos, &mut a);
        parallel.vgh(pos, &mut b);
        for n in 0..40 {
            assert_eq!(a.value(n), b.value(n));
            assert_eq!(a.hessian(n), b.hessian(n));
        }
    }

    #[test]
    fn sharded_construction_is_bit_identical_to_single_pass() {
        let t = table(40, 21); // ragged: 3 blocks of nb = 16
        let budget = 16 * t.bytes_per_spline();
        let single = BlockedEngine::from_multi(&t, budget);
        for domains in [1, 2, 3, 5] {
            let map = single.shard_map(domains);
            let sharded = BlockedEngine::from_multi_sharded(&t, budget, &map);
            assert_eq!(sharded.n_blocks(), single.n_blocks());
            assert_eq!(sharded.nb(), single.nb());
            let pos = [0.4f32, 0.8, 0.2];
            let (mut a, mut b) = (single.make_out(), sharded.make_out());
            single.vgh(pos, &mut a);
            sharded.vgh(pos, &mut b);
            for n in 0..40 {
                assert_eq!(a.value(n), b.value(n), "domains={domains} n={n}");
                assert_eq!(a.hessian(n), b.hessian(n), "domains={domains} n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard map must partition")]
    fn sharded_construction_rejects_mismatched_map() {
        let t = table(40, 21);
        let map = einspline::ShardMap::balanced(7, 2); // decomposition has 3 blocks
        let _ = BlockedEngine::from_multi_sharded(&t, 16 * t.bytes_per_spline(), &map);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_output_rejected() {
        let t = table(40, 2);
        let blocked = BlockedEngine::with_block_size(&t, 16);
        let mut small = WalkerSoA::new(16);
        blocked.vgh([0.5, 0.5, 0.5], &mut small);
    }
}
