//! A single set-associative, write-allocate, write-back cache with true
//! LRU replacement.

/// Geometry of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Ways per set.
    pub assoc: usize,
    /// Line size in bytes (64 everywhere in this workspace).
    pub line: usize,
}

impl CacheConfig {
    /// Create a new instance.
    pub fn new(size: usize, assoc: usize, line: usize) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(size.is_multiple_of(assoc * line), "size must be sets*assoc*line");
        Self { size, assoc, line }
    }

    #[inline]
    /// N sets.
    pub fn n_sets(&self) -> usize {
        self.size / (self.assoc * self.line)
    }
}

/// One cached line: tag plus dirty bit.
#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u64,
    dirty: bool,
}

/// Access outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The line was resident.
    Hit,
    /// Miss; reports whether a dirty victim was written back.
    Miss {
        /// True when the evicted victim line was dirty.
        writeback: bool,
    },
}

/// Set-associative LRU cache. Each set keeps entries MRU-first; with the
/// small associativities modelled here (≤ 24) linear scans beat fancier
/// structures.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Entry>>,
    line_shift: u32,
    set_mask: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Dirty lines evicted (write-back traffic in lines).
    pub writebacks: u64,
}

impl Cache {
    /// Create a new instance.
    pub fn new(cfg: CacheConfig) -> Self {
        let n_sets = cfg.n_sets();
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Self {
            cfg,
            sets: vec![Vec::with_capacity(cfg.assoc); n_sets],
            line_shift: cfg.line.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    #[inline]
    /// Config.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Access one byte address; the whole line is cached. Returns whether
    /// it hit and whether a dirty victim was written back.
    pub fn access(&mut self, addr: u64, write: bool) -> Outcome {
        let line_addr = addr >> self.line_shift;
        let set_idx = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];

        if let Some(pos) = set.iter().position(|e| e.tag == tag) {
            let mut e = set.remove(pos);
            e.dirty |= write;
            set.insert(0, e);
            self.hits += 1;
            return Outcome::Hit;
        }

        self.misses += 1;
        let mut writeback = false;
        if set.len() == self.cfg.assoc {
            let victim = set.pop().expect("full set has a victim");
            writeback = victim.dirty;
            if writeback {
                self.writebacks += 1;
            }
        }
        set.insert(0, Entry { tag, dirty: write });
        Outcome::Miss { writeback }
    }

    /// Hit ratio of demand accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Reset statistics, keep contents.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64B = 512B.
        Cache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().n_sets(), 4);
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000, false), Outcome::Miss { writeback: false });
        assert_eq!(c.access(0x1000, false), Outcome::Hit);
        assert_eq!(c.access(0x103f, false), Outcome::Hit, "same line");
        assert_eq!(c.access(0x1040, false), Outcome::Miss { writeback: false });
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0 (set = (addr>>6) & 3): stride 256.
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is MRU
        c.access(d, false); // evicts b
        assert_eq!(c.access(a, false), Outcome::Hit);
        assert_eq!(c.access(b, false), Outcome::Miss { writeback: false });
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x0000, true); // dirty
        c.access(0x0100, false);
        let out = c.access(0x0200, false); // evicts dirty 0x0000
        assert_eq!(out, Outcome::Miss { writeback: true });
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x0000, false);
        c.access(0x0000, true); // hit, now dirty
        c.access(0x0100, false);
        let out = c.access(0x0200, false);
        assert_eq!(out, Outcome::Miss { writeback: true });
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        // 32 KB, 8-way: a 16 KB working set must fully hit on re-walk.
        let mut c = Cache::new(CacheConfig::new(32 * 1024, 8, 64));
        for addr in (0..16 * 1024u64).step_by(64) {
            c.access(addr, false);
        }
        c.reset_stats();
        for addr in (0..16 * 1024u64).step_by(64) {
            c.access(addr, false);
        }
        assert_eq!(c.misses, 0);
        assert_eq!(c.hits, 256);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        // 4 KB direct-ish cache walked with an 8 KB set: LRU streaming
        // produces 0 hits on the second pass.
        let mut c = Cache::new(CacheConfig::new(4 * 1024, 4, 64));
        for _pass in 0..2 {
            for addr in (0..8 * 1024u64).step_by(64) {
                c.access(addr, false);
            }
        }
        assert_eq!(c.hits, 0);
    }

    #[test]
    fn hit_ratio_bounds() {
        let mut c = tiny();
        assert_eq!(c.hit_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }
}
