//! The four evaluation platforms of the paper (Table I), as cache/
//! bandwidth/compute models.
//!
//! | | BDW | KNC | KNL | BG/Q |
//! |---|---|---|---|---|
//! | processor | E5-2697v4 | 7120P | 7250P | PowerPC A2 |
//! | cores | 18 | 61 | 68 | 17 (16 usable) |
//! | SIMD bits | 256 | 512 | 512 | 256 |
//! | freq (GHz) | 2.3 | 1.238 | 1.4 | 1.6 |
//! | L1d | 32 KB | 32 KB | 32 KB | 16 KB |
//! | L2 | 256 KB/core | 512 KB/core | 1 MB/2-core tile | 32 MB shared |
//! | LLC | 45 MB shared | — | — | — |
//! | stream BW (GB/s) | 64 | 177 | 490 | 28 |

use crate::cache::CacheConfig;
use crate::hierarchy::{Hierarchy, LevelSpec, Scope};

/// A modelled platform.
#[derive(Clone, Debug)]
pub struct Platform {
    /// Str.
    pub name: &'static str,
    /// Cores.
    pub cores: usize,
    /// Threads per core.
    pub threads_per_core: usize,
    /// Simd bits.
    pub simd_bits: usize,
    /// Freq ghz.
    pub freq_ghz: f64,
    /// Levels.
    pub levels: Vec<LevelSpec>,
    /// Measured STREAM bandwidth, GB/s (Table I).
    pub stream_bw_gbs: f64,
    /// FMA pipelines per core (BDW/KNL dual-issue, KNC/BG-Q single).
    pub fma_units: usize,
    /// Fraction of peak the *SoA* (vectorized, unit-stride) kernels reach
    /// with cache-resident data. Calibration constant: sets the compute
    /// roof of the predictor; the traffic side is simulated.
    pub eff_soa: f64,
    /// Fraction of peak the *AoS* baseline reaches (strided stores defeat
    /// vectorization). Calibrated so the compute-bound A-step speedup
    /// matches the paper's Table IV row A per platform.
    pub eff_aos: f64,
}

impl Platform {
    /// Single-precision SIMD lanes.
    pub fn simd_lanes_sp(&self) -> usize {
        self.simd_bits / 32
    }

    /// Theoretical peak single-precision GFLOP/s (FMA counted as 2 per
    /// pipeline).
    pub fn peak_sp_gflops(&self) -> f64 {
        self.cores as f64
            * self.freq_ghz
            * self.simd_lanes_sp() as f64
            * 2.0
            * self.fma_units as f64
    }

    /// Hardware threads on the node.
    pub fn total_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }

    /// Instantiate the cache hierarchy for `n_threads` active threads.
    pub fn hierarchy(&self, n_threads: usize) -> Hierarchy {
        Hierarchy::new(&self.levels, n_threads)
    }

    /// Intel Xeon E5-2697v4 "Broadwell".
    pub fn bdw() -> Self {
        Self {
            name: "BDW",
            cores: 18,
            threads_per_core: 2,
            simd_bits: 256,
            freq_ghz: 2.3,
            levels: vec![
                LevelSpec {
                    name: "L1",
                    // Shared by the 2 hyperthreads of a core.
                    cfg: CacheConfig::new(32 * 1024, 8, 64),
                    scope: Scope::Private(2),
                },
                LevelSpec {
                    name: "L2",
                    cfg: CacheConfig::new(256 * 1024, 8, 64),
                    scope: Scope::Private(2),
                },
                LevelSpec {
                    name: "LLC",
                    // 45 MB shared; modelled as 44 MB = 22 ways × 32768
                    // power-of-two sets.
                    cfg: CacheConfig::new(44 * 1024 * 1024, 22, 64),
                    scope: Scope::Shared,
                },
            ],
            stream_bw_gbs: 64.0,
            fma_units: 2,
            eff_soa: 0.30,
            // Calibrated against Table IV row A at N=2048, where the SoA
            // side is DRAM-bound on BDW: T_SoA(mem) ≈ 122k evals/s and
            // A = 1.7 ⇒ the AoS compute roof sits at ≈ 72k evals/s.
            eff_aos: 0.08,
        }
    }

    /// Intel Xeon Phi 7120P "Knights Corner" coprocessor.
    pub fn knc() -> Self {
        Self {
            name: "KNC",
            cores: 61,
            threads_per_core: 4,
            simd_bits: 512,
            freq_ghz: 1.238,
            levels: vec![
                LevelSpec {
                    name: "L1",
                    // Shared by the 4 hardware threads of a core.
                    cfg: CacheConfig::new(32 * 1024, 8, 64),
                    scope: Scope::Private(4),
                },
                LevelSpec {
                    name: "L2",
                    cfg: CacheConfig::new(512 * 1024, 8, 64),
                    scope: Scope::Private(4),
                },
            ],
            stream_bw_gbs: 177.0,
            fma_units: 1,
            // In-order core: the paper's biggest AoS→SoA boost is on KNC
            // (Table IV: A = 2.6x).
            eff_soa: 0.12,
            eff_aos: 0.12 / 2.6,
        }
    }

    /// Intel Xeon Phi 7250P "Knights Landing", quad/flat, MCDRAM.
    pub fn knl() -> Self {
        Self {
            name: "KNL",
            cores: 68,
            threads_per_core: 4,
            simd_bits: 512,
            freq_ghz: 1.4,
            levels: vec![
                LevelSpec {
                    name: "L1",
                    // Shared by the 4 hardware threads of a core.
                    cfg: CacheConfig::new(32 * 1024, 8, 64),
                    scope: Scope::Private(4),
                },
                LevelSpec {
                    name: "L2",
                    // 1 MB per 2-core tile = 8 hardware threads.
                    cfg: CacheConfig::new(1024 * 1024, 16, 64),
                    scope: Scope::Private(8),
                },
            ],
            stream_bw_gbs: 490.0,
            fma_units: 2,
            eff_soa: 0.13,
            eff_aos: 0.13 / 1.7, // paper Table IV: A = 1.7x on KNL
        }
    }

    /// IBM Blue Gene/Q PowerPC A2 node (16 compute cores).
    pub fn bgq() -> Self {
        Self {
            name: "BG/Q",
            cores: 16,
            threads_per_core: 4,
            simd_bits: 256,
            freq_ghz: 1.6,
            levels: vec![
                LevelSpec {
                    name: "L1",
                    // Shared by the 4 hardware threads of a core.
                    cfg: CacheConfig::new(16 * 1024, 8, 64),
                    scope: Scope::Private(4),
                },
                LevelSpec {
                    name: "L2",
                    cfg: CacheConfig::new(32 * 1024 * 1024, 16, 64),
                    scope: Scope::Shared,
                },
            ],
            stream_bw_gbs: 28.0,
            fma_units: 1,
            eff_soa: 0.25,
            eff_aos: 0.25 / 1.9, // paper Table IV: A = 1.9x on BG/Q
        }
    }

    /// All four paper platforms.
    pub fn all() -> Vec<Platform> {
        vec![Self::bdw(), Self::knc(), Self::knl(), Self::bgq()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_ordering_matches_paper() {
        // KNL ≫ KNC > BDW > BG/Q (paper: KNL peak > 10× one BG/Q node).
        let (bdw, knc, knl, bgq) = (
            Platform::bdw().peak_sp_gflops(),
            Platform::knc().peak_sp_gflops(),
            Platform::knl().peak_sp_gflops(),
            Platform::bgq().peak_sp_gflops(),
        );
        assert!(knl > knc && knc > bdw && bdw > bgq);
        assert!(knl > 10.0 * bgq / 2.0, "KNL ~an order above BG/Q");
    }

    #[test]
    fn knl_simd_lanes() {
        assert_eq!(Platform::knl().simd_lanes_sp(), 16);
        assert_eq!(Platform::bgq().simd_lanes_sp(), 8);
    }

    #[test]
    fn total_threads_match_paper_walker_counts() {
        // Paper: Nw = 36 (BDW), 244→240 (KNC), 272→256 (KNL), 64 (BG/Q);
        // one walker per hardware thread (approximately on Phi).
        assert_eq!(Platform::bdw().total_threads(), 36);
        assert_eq!(Platform::bgq().total_threads(), 64);
        assert!(Platform::knc().total_threads() >= 240);
        assert!(Platform::knl().total_threads() >= 256);
    }

    #[test]
    fn hierarchies_instantiate() {
        for p in Platform::all() {
            let h = p.hierarchy(4);
            assert!(h.n_threads() == 4, "{}", p.name);
        }
    }

    #[test]
    fn llc_platforms_have_three_levels() {
        assert_eq!(Platform::bdw().levels.len(), 3);
        assert_eq!(Platform::knl().levels.len(), 2);
        assert_eq!(Platform::bgq().levels.len(), 2);
    }

    #[test]
    fn bdw_llc_capacity_is_about_45mb() {
        let cfg = Platform::bdw().levels[2].cfg;
        assert!(cfg.size >= 40 * 1024 * 1024 && cfg.size <= 46 * 1024 * 1024);
        assert!(cfg.n_sets().is_power_of_two());
    }

    #[test]
    fn bandwidth_ordering() {
        assert!(Platform::knl().stream_bw_gbs > Platform::knc().stream_bw_gbs);
        assert!(Platform::bdw().stream_bw_gbs > Platform::bgq().stream_bw_gbs);
    }
}
