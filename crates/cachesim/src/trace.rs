//! Kernel access-pattern replay.
//!
//! Generates the exact byte-address stream the V/VGL/VGH kernels issue —
//! coefficient line reads and output-stream accumulations, in kernel
//! order — and drives it through a platform's cache hierarchy. This is
//! the substitute for running on the paper's four machines: every
//! capacity effect the paper reasons about (outputs falling out of
//! L1/L2, a coefficient tile fitting a shared LLC, hyperthreads
//! competing for one cache) emerges from LRU simulation of the same
//! addresses.
//!
//! Fidelity choices:
//!
//! * loop order matches the implementations — AoS touches all its output
//!   streams per coefficient *point* (64× per eval), SoA per (i,j)
//!   *plane* (16× per eval), AoSoA runs tile-major (paper Fig. 6);
//! * concurrently running walkers are interleaved at plane granularity,
//!   approximating simultaneous execution on shared caches;
//! * before measuring, each tile's region is pre-touched and a warm-up
//!   batch of positions runs, so the statistics describe the steady
//!   state (a random-access region held at LRU equilibrium).

use crate::hierarchy::{Hierarchy, LevelStats};
use crate::platform::Platform;
use bspline::parallel::partition_tiles;
use bspline::{Kernel, Layout};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scenario to replay.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Kernel.
    pub kernel: Kernel,
    /// Layout.
    pub layout: Layout,
    /// Total splines N.
    pub n_splines: usize,
    /// Tile size Nb (ignored unless layout is AoSoA).
    pub nb: usize,
    /// Grid dimensions (nx, ny, nz).
    pub grid: (usize, usize, usize),
    /// Measured positions per walker (after warm-up).
    pub n_positions: usize,
    /// Warm-up positions per tile (cache state settles; not measured).
    pub warmup: usize,
    /// Concurrently simulated hardware threads.
    pub n_threads: usize,
    /// Threads cooperating on one walker (Opt C); 1 = walker
    /// parallelism.
    pub threads_per_walker: usize,
    /// Seed.
    pub seed: u64,
}

impl TraceConfig {
    /// A single-walker VGH scenario with paper-like defaults.
    pub fn vgh(layout: Layout, n_splines: usize, nb: usize) -> Self {
        Self {
            kernel: Kernel::Vgh,
            layout,
            n_splines,
            nb,
            grid: (48, 48, 48),
            n_positions: 32,
            warmup: 8,
            n_threads: 1,
            threads_per_walker: 1,
            seed: 0xbead,
        }
    }
}

/// Simulation result (measured phase only).
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written back to DRAM.
    pub dram_write_bytes: u64,
    /// Walker-position evaluations measured (each covers all N splines).
    pub evals: u64,
    /// Demand accesses issued.
    pub accesses: u64,
    /// Per-level stats.
    pub levels: Vec<(&'static str, LevelStats)>,
}

impl SimStats {
    /// DRAM traffic per evaluation (read + write), bytes.
    pub fn bytes_per_eval(&self) -> f64 {
        (self.dram_read_bytes + self.dram_write_bytes) as f64 / self.evals.max(1) as f64
    }

    /// DRAM read traffic per evaluation, bytes.
    pub fn read_bytes_per_eval(&self) -> f64 {
        self.dram_read_bytes as f64 / self.evals.max(1) as f64
    }

    /// DRAM write traffic per evaluation, bytes.
    pub fn write_bytes_per_eval(&self) -> f64 {
        self.dram_write_bytes as f64 / self.evals.max(1) as f64
    }

    fn absorb(&mut self, h: &Hierarchy) {
        self.dram_read_bytes += h.dram_read_bytes();
        self.dram_write_bytes += h.dram_write_bytes();
        self.accesses += h.accesses;
        let stats = h.level_stats();
        if self.levels.is_empty() {
            self.levels = stats;
        } else {
            for (acc, (_, s)) in self.levels.iter_mut().zip(stats) {
                acc.1.hits += s.hits;
                acc.1.misses += s.misses;
                acc.1.writebacks += s.writebacks;
            }
        }
    }
}

/// Pad a spline count to the f32 cache-line multiple used by the real
/// containers.
fn padded(n: usize) -> usize {
    n.div_ceil(16) * 16
}

/// Virtual memory map of one scenario (f32 precision, 64 B lines).
struct AddressMap {
    tile_base: Vec<u64>,
    tile_bytes: u64,
    /// Coefficient line stride in bytes (padded Nb × 4).
    line_bytes: usize,
    sy: usize,
    sx: usize,
    out_base: u64,
    out_stream_bytes: usize,
    out_tile_bytes: usize,
    out_walker_bytes: usize,
    n_tiles: usize,
}

impl AddressMap {
    fn new(cfg: &TraceConfig) -> Self {
        let (nx, ny, nz) = cfg.grid;
        let (px, py, pz) = (nx + 3, ny + 3, nz + 3);
        let (nb, n_tiles) = match cfg.layout {
            Layout::AoSoA => (cfg.nb.min(cfg.n_splines), cfg.n_splines.div_ceil(cfg.nb)),
            _ => (cfg.n_splines, 1),
        };
        let line_bytes = padded(nb) * 4;
        let tile_bytes = (px * py * pz * line_bytes) as u64;
        let tile_base: Vec<u64> = (0..n_tiles).map(|t| t as u64 * tile_bytes).collect();
        let coef_total = tile_bytes * n_tiles as u64;

        // 16 stream slots reserved per (walker, tile): enough for the 13
        // AoS VGH components.
        let out_stream_bytes = line_bytes;
        let out_tile_bytes = 16 * out_stream_bytes;
        let out_walker_bytes = n_tiles * out_tile_bytes;
        Self {
            tile_base,
            tile_bytes,
            line_bytes,
            sy: pz,
            sx: py * pz,
            out_base: (coef_total + 4096) & !63u64,
            out_stream_bytes,
            out_tile_bytes,
            out_walker_bytes,
            n_tiles,
        }
    }

    #[inline]
    fn coef_line(&self, tile: usize, ix: usize, iy: usize, iz: usize) -> u64 {
        self.tile_base[tile]
            + ((ix * self.sx + iy * self.sy + iz) * self.line_bytes) as u64
    }

    #[inline]
    fn out_stream(&self, walker: usize, tile: usize, stream: usize) -> u64 {
        self.out_base
            + (walker * self.out_walker_bytes
                + tile * self.out_tile_bytes
                + stream * self.out_stream_bytes) as u64
    }
}

/// Output streams accumulated per kernel/layout.
fn output_streams(kernel: Kernel, layout: Layout) -> usize {
    match (kernel, layout) {
        (Kernel::V, _) => 1,
        (Kernel::Vgl, Layout::Aos) => 6, // v, g×3, l, per-call tmp
        (Kernel::Vgl, _) => 5,
        (Kernel::Vgh, Layout::Aos) => 13,
        (Kernel::Vgh, _) => 10,
    }
}

/// One plane-group of accesses: the interleaving quantum.
#[allow(clippy::too_many_arguments)]
fn emit_group(
    h: &mut Hierarchy,
    map: &AddressMap,
    cfg: &TraceConfig,
    thread: usize,
    walker: usize,
    tile: usize,
    corner: (usize, usize, usize),
    group: usize,
) {
    let n_streams = output_streams(cfg.kernel, cfg.layout);
    let (i0, j0, k0) = corner;
    let nline = map.line_bytes.div_ceil(64);
    let touch_outputs = |h: &mut Hierarchy| {
        for s in 0..n_streams {
            let sb = map.out_stream(walker, tile, s);
            for l in 0..nline {
                h.access(thread, sb + (l * 64) as u64, true);
            }
        }
    };
    match cfg.layout {
        Layout::Aos => {
            // group = coefficient point index 0..64.
            let (i, rem) = (group / 16, group % 16);
            let (j, k) = (rem / 4, rem % 4);
            let base = map.coef_line(tile, i0 + i, j0 + j, k0 + k);
            for l in 0..nline {
                h.access(thread, base + (l * 64) as u64, false);
            }
            touch_outputs(h);
        }
        Layout::Soa | Layout::AoSoA => {
            // group = (i,j) plane index 0..16; 4 fused z-lines then the
            // output streams.
            let (i, j) = (group / 4, group % 4);
            for k in 0..4 {
                let base = map.coef_line(tile, i0 + i, j0 + j, k0 + k);
                for l in 0..nline {
                    h.access(thread, base + (l * 64) as u64, false);
                }
            }
            touch_outputs(h);
        }
    }
}

fn groups_per_eval(layout: Layout) -> usize {
    match layout {
        Layout::Aos => 64,
        Layout::Soa | Layout::AoSoA => 16,
    }
}

/// Sequentially touch a tile's coefficient region plus the involved
/// walkers' output regions — establishes the LRU steady state for a
/// random-access region far faster than replaying thousands of warm-up
/// evaluations.
fn pretouch(
    h: &mut Hierarchy,
    map: &AddressMap,
    tile: usize,
    users: &[(usize, usize)], // (thread, walker)
) {
    for &(thread, walker) in users {
        for s in 0..16 {
            let sb = map.out_stream(walker, tile, s);
            for l in 0..map.out_stream_bytes.div_ceil(64) {
                h.access(thread, sb + (l * 64) as u64, true);
            }
        }
    }
    // The shared coefficient region, spread across its users round-robin
    // (it is read by everyone).
    let lines = (map.tile_bytes / 64) as usize;
    for l in 0..lines {
        let (thread, _) = users[l % users.len()];
        h.access(thread, map.tile_base[tile] + (l * 64) as u64, false);
    }
}

/// Replay the scenario on a platform; returns measured-phase statistics.
pub fn simulate(cfg: &TraceConfig, platform: &Platform) -> SimStats {
    assert!(cfg.n_threads >= 1);
    assert!(
        cfg.threads_per_walker >= 1 && cfg.n_threads.is_multiple_of(cfg.threads_per_walker),
        "thread count must be a multiple of threads_per_walker"
    );
    let map = AddressMap::new(cfg);
    let mut h = platform.hierarchy(cfg.n_threads);
    let n_walkers = cfg.n_threads / cfg.threads_per_walker;
    let (nx, ny, nz) = cfg.grid;
    let total_pos = cfg.warmup + cfg.n_positions;

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let corners: Vec<Vec<(usize, usize, usize)>> = (0..n_walkers)
        .map(|_| {
            (0..total_pos)
                .map(|_| {
                    (
                        rng.random_range(0..nx),
                        rng.random_range(0..ny),
                        rng.random_range(0..nz),
                    )
                })
                .collect()
        })
        .collect();

    let nth = cfg.threads_per_walker;
    let groups = groups_per_eval(cfg.layout);
    let mut stats = SimStats::default();

    if nth == 1 {
        // Walker parallelism, tile-major (Fig. 6): tiles outer, positions
        // inner, walkers interleaved at plane granularity.
        let users: Vec<(usize, usize)> = (0..n_walkers).map(|w| (w, w)).collect();
        for tile in 0..map.n_tiles {
            pretouch(&mut h, &map, tile, &users);
            let run = |h: &mut Hierarchy, lo: usize, hi: usize| {
                for s in lo..hi {
                    for g in 0..groups {
                        for w in 0..n_walkers {
                            emit_group(h, &map, cfg, w, w, tile, corners[w][s], g);
                        }
                    }
                }
            };
            run(&mut h, 0, cfg.warmup);
            h.reset_stats();
            run(&mut h, cfg.warmup, total_pos);
            stats.absorb(&h);
            h.reset_stats();
        }
        stats.evals += (n_walkers * cfg.n_positions * map.n_tiles) as u64;
        // An "eval" spans all tiles: normalize from tile-evals.
        stats.evals /= map.n_tiles as u64;
    } else {
        // Nested threading: each walker's tiles split into nth chunks;
        // chunk c of every walker runs on its own thread. Threads advance
        // through their chunks tile-step by tile-step.
        let ranges = partition_tiles(map.n_tiles, nth);
        let max_chunk = ranges.iter().map(|(a, b)| b - a).max().unwrap_or(0);
        for step in 0..max_chunk {
            // All (walker, chunk) pairs whose chunk still has a tile at
            // this step.
            let mut active: Vec<(usize, usize, usize)> = Vec::new(); // (thread, walker, tile)
            for w in 0..n_walkers {
                for (c, &(lo, hi)) in ranges.iter().enumerate() {
                    let tile = lo + step;
                    if tile < hi {
                        active.push((w * nth + c, w, tile));
                    }
                }
            }
            for &(thread, walker, tile) in &active {
                pretouch(&mut h, &map, tile, &[(thread, walker)]);
            }
            let run = |h: &mut Hierarchy, lo: usize, hi: usize| {
                for s in lo..hi {
                    for g in 0..groups {
                        for &(thread, walker, tile) in &active {
                            emit_group(
                                h,
                                &map,
                                cfg,
                                thread,
                                walker,
                                tile,
                                corners[walker][s],
                                g,
                            );
                        }
                    }
                }
            };
            run(&mut h, 0, cfg.warmup);
            h.reset_stats();
            run(&mut h, cfg.warmup, total_pos);
            stats.absorb(&h);
            h.reset_stats();
        }
        // Each position is one eval per walker (its threads cover all
        // tiles once per position across the chunk steps).
        stats.evals = (n_walkers * cfg.n_positions) as u64;
    }

    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(layout: Layout, n: usize, nb: usize) -> TraceConfig {
        TraceConfig {
            kernel: Kernel::Vgh,
            layout,
            n_splines: n,
            nb,
            grid: (16, 16, 16),
            n_positions: 12,
            warmup: 4,
            n_threads: 1,
            threads_per_walker: 1,
            seed: 7,
        }
    }

    #[test]
    fn soa_issues_fewer_output_accesses_than_aos() {
        let p = Platform::knl();
        let aos = simulate(&base_cfg(Layout::Aos, 256, 256), &p);
        let soa = simulate(&base_cfg(Layout::Soa, 256, 256), &p);
        assert_eq!(aos.evals, soa.evals);
        assert!(
            aos.accesses > 2 * soa.accesses,
            "AoS touches outputs 64× vs 16×: {} vs {}",
            aos.accesses,
            soa.accesses
        );
    }

    #[test]
    fn large_n_writes_spill_and_tiling_recovers() {
        // The Fig 7b mechanism on KNL: 8 hyperthread walkers share one
        // 1 MB L2 tile; untiled N=4096 outputs (8 × 160 KB) thrash it,
        // Nb=512 tiles stay resident.
        let p = Platform::knl();
        let mut untiled_cfg = base_cfg(Layout::Soa, 4096, 4096);
        untiled_cfg.n_threads = 8;
        let mut tiled_cfg = base_cfg(Layout::AoSoA, 4096, 512);
        tiled_cfg.n_threads = 8;
        let untiled = simulate(&untiled_cfg, &p);
        let tiled = simulate(&tiled_cfg, &p);
        assert!(
            untiled.write_bytes_per_eval() > 2.0 * tiled.write_bytes_per_eval(),
            "untiled {} B/eval vs tiled {} B/eval",
            untiled.write_bytes_per_eval(),
            tiled.write_bytes_per_eval()
        );
    }

    #[test]
    fn small_n_outputs_stay_in_cache() {
        let p = Platform::knl();
        let mut cfg = base_cfg(Layout::Soa, 256, 256);
        cfg.n_threads = 8;
        let s = simulate(&cfg, &p);
        // 8 walkers × 10 KB outputs fit the 1 MB L2: negligible write
        // traffic per eval compared to the coefficient reads.
        assert!(
            s.write_bytes_per_eval() < 0.2 * s.read_bytes_per_eval(),
            "w {} vs r {}",
            s.write_bytes_per_eval(),
            s.read_bytes_per_eval()
        );
    }

    #[test]
    fn coefficient_reads_dominate_reads() {
        let p = Platform::knl();
        let s = simulate(&base_cfg(Layout::Soa, 512, 512), &p);
        assert!(s.read_bytes_per_eval() > 1000.0);
    }

    #[test]
    fn nested_threads_partition_tiles() {
        let p = Platform::knl();
        let mut cfg = base_cfg(Layout::AoSoA, 512, 64); // 8 tiles
        cfg.n_threads = 4;
        cfg.threads_per_walker = 4;
        let s = simulate(&cfg, &p);
        assert_eq!(s.evals, 12); // 1 walker × 12 positions
        assert!(s.accesses > 0);
    }

    #[test]
    fn multi_walker_scales_evals() {
        let p = Platform::bdw();
        let mut cfg = base_cfg(Layout::AoSoA, 256, 64);
        cfg.n_threads = 4;
        let s = simulate(&cfg, &p);
        assert_eq!(s.evals, 4 * 12);
    }

    #[test]
    fn kernel_v_touches_one_output_stream() {
        let p = Platform::knl();
        let mut cfg_v = base_cfg(Layout::Soa, 256, 256);
        cfg_v.kernel = Kernel::V;
        let v = simulate(&cfg_v, &p);
        let vgh = simulate(&base_cfg(Layout::Soa, 256, 256), &p);
        assert!(v.accesses < vgh.accesses / 2);
    }

    #[test]
    fn stats_bytes_are_line_multiples() {
        let p = Platform::bgq();
        let s = simulate(&base_cfg(Layout::Soa, 128, 128), &p);
        assert_eq!(s.dram_read_bytes % 64, 0);
        assert_eq!(s.dram_write_bytes % 64, 0);
    }

    #[test]
    fn llc_keeps_small_tiles_resident_on_bdw() {
        // Fig 7c mechanism on BDW: with a 48³ grid, a Nb=64 tile region
        // (28 MB) fits the 44 MB LLC → coefficient reads mostly hit; a
        // Nb=256 tile region (113 MB) cannot → reads stream from DRAM.
        let p = Platform::bdw();
        let mut small = TraceConfig::vgh(Layout::AoSoA, 512, 64);
        small.n_positions = 16;
        small.warmup = 4;
        small.n_threads = 2;
        let mut large = TraceConfig::vgh(Layout::AoSoA, 512, 256);
        large.n_positions = 16;
        large.warmup = 4;
        large.n_threads = 2;
        let s = simulate(&small, &p);
        let l = simulate(&large, &p);
        // Same total work; per-eval read traffic should be far lower for
        // the resident tile.
        assert!(
            s.read_bytes_per_eval() < 0.5 * l.read_bytes_per_eval(),
            "Nb=64 {} B/eval vs Nb=256 {} B/eval",
            s.read_bytes_per_eval(),
            l.read_bytes_per_eval()
        );
    }
}
