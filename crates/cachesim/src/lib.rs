//! `cachesim` — trace-driven cache-hierarchy simulation of the paper's
//! four evaluation platforms.
//!
//! The paper measures on BDW, KNC, KNL and BG/Q hardware (Table I). This
//! crate substitutes for those machines (see DESIGN.md): it replays the
//! exact memory-access streams of the B-spline kernels through
//! set-associative LRU models of each platform's cache hierarchy and
//! predicts node throughput with a cache-aware roofline. The capacity
//! crossovers the paper reports — optimal tile size 64 on shared-LLC
//! machines vs 512 on private-L2 Xeon Phi, output arrays spilling at
//! large N — are emergent properties of the replay, not inputs.
//!
//! # Quick example
//!
//! ```
//! use cachesim::{simulate, predict, Platform, TraceConfig};
//! use bspline::Layout;
//!
//! let knl = Platform::knl();
//! let mut cfg = TraceConfig::vgh(Layout::AoSoA, 512, 64);
//! cfg.grid = (16, 16, 16);       // small grid keeps the doctest fast
//! cfg.n_positions = 8;
//! cfg.warmup = 4;
//! let stats = simulate(&cfg, &knl);
//! let flops = (16 * 44 * 512) as f64; // SoA-canonical VGH work
//! let pred = predict(&knl, Layout::AoSoA, &stats, flops, 512, 8, 1.0);
//! assert!(pred.throughput > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// The 4-point tensor-product kernels use fixed-trip indexed loops on
// purpose (mirrors the paper's loop structure and vectorizes cleanly).
#![allow(clippy::needless_range_loop)]

pub mod cache;
pub mod hierarchy;
pub mod model;
pub mod platform;
pub mod trace;

pub use cache::{Cache, CacheConfig, Outcome};
pub use hierarchy::{Hierarchy, LevelSpec, LevelStats, Scope};
pub use model::{predict, Bound, Prediction, TILE_OVERHEAD_FLOPS};
pub use platform::Platform;
pub use trace::{simulate, SimStats, TraceConfig};
