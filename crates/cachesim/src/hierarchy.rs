//! A multi-level, multi-thread cache hierarchy.
//!
//! Levels are searched in order; a miss at the last level is DRAM
//! traffic. Private levels instantiate one cache per thread (or per
//! thread group — KNL's L2 is shared by a 2-core tile), shared levels
//! one cache for the node. Fills are inclusive: a miss installs the line
//! at every level on its path — a simplification that matches the
//! capacity arithmetic the paper's analysis relies on.

use crate::cache::{Cache, CacheConfig, Outcome};

/// Sharing scope of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// One cache instance per thread group of `k` threads
    /// (`Private(1)` = per-thread, `Private(2)` = KNL tile pairs).
    Private(usize),
    /// One instance for the whole node.
    Shared,
}

/// Specification of one level.
#[derive(Clone, Copy, Debug)]
pub struct LevelSpec {
    /// Str.
    pub name: &'static str,
    /// Cfg.
    pub cfg: CacheConfig,
    /// Scope.
    pub scope: Scope,
}

/// One instantiated level.
#[derive(Clone, Debug)]
struct Level {
    spec: LevelSpec,
    caches: Vec<Cache>,
}

impl Level {
    fn cache_index(&self, thread: usize) -> usize {
        match self.spec.scope {
            Scope::Private(k) => (thread / k) % self.caches.len(),
            Scope::Shared => 0,
        }
    }
}

/// Aggregated statistics for one level.
#[derive(Clone, Copy, Debug, Default)]
pub struct LevelStats {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Writebacks.
    pub writebacks: u64,
}

/// The hierarchy plus DRAM traffic counters.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<Level>,
    line: usize,
    n_threads: usize,
    /// Lines fetched from DRAM (demand fills at the last level).
    pub dram_fills: u64,
    /// Dirty lines written back to DRAM from the last level.
    pub dram_writebacks: u64,
    /// Total demand accesses issued.
    pub accesses: u64,
}

impl Hierarchy {
    /// Instantiate for `n_threads` concurrently running threads.
    pub fn new(specs: &[LevelSpec], n_threads: usize) -> Self {
        assert!(!specs.is_empty(), "need at least one cache level");
        assert!(n_threads > 0);
        let line = specs[0].cfg.line;
        let levels = specs
            .iter()
            .map(|spec| {
                assert_eq!(spec.cfg.line, line, "uniform line size required");
                let n_caches = match spec.scope {
                    Scope::Private(k) => {
                        assert!(k > 0);
                        n_threads.div_ceil(k)
                    }
                    Scope::Shared => 1,
                };
                Level {
                    spec: *spec,
                    caches: vec![Cache::new(spec.cfg); n_caches],
                }
            })
            .collect();
        Self {
            levels,
            line,
            n_threads,
            dram_fills: 0,
            dram_writebacks: 0,
            accesses: 0,
        }
    }

    #[inline]
    /// Line.
    pub fn line(&self) -> usize {
        self.line
    }

    #[inline]
    /// N threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// One demand access from `thread`. Searches levels outward; installs
    /// the line at every missed level.
    pub fn access(&mut self, thread: usize, addr: u64, write: bool) {
        debug_assert!(thread < self.n_threads);
        self.accesses += 1;
        let n_levels = self.levels.len();
        for (li, level) in self.levels.iter_mut().enumerate() {
            let ci = level.cache_index(thread);
            match level.caches[ci].access(addr, write) {
                Outcome::Hit => return,
                Outcome::Miss { writeback } => {
                    // Last level: dirty victims and demand fills hit DRAM.
                    if li == n_levels - 1 {
                        self.dram_fills += 1;
                        if writeback {
                            self.dram_writebacks += 1;
                        }
                    }
                }
            }
        }
    }

    /// Access a contiguous byte range, line by line.
    pub fn access_range(&mut self, thread: usize, addr: u64, bytes: usize, write: bool) {
        let line = self.line as u64;
        let first = addr / line;
        let last = (addr + bytes as u64 - 1) / line;
        for l in first..=last {
            self.access(thread, l * line, write);
        }
    }

    /// Demand bytes read from DRAM.
    pub fn dram_read_bytes(&self) -> u64 {
        self.dram_fills * self.line as u64
    }

    /// Bytes written back to DRAM.
    pub fn dram_write_bytes(&self) -> u64 {
        self.dram_writebacks * self.line as u64
    }

    /// Per-level aggregate stats (summed over instances).
    pub fn level_stats(&self) -> Vec<(&'static str, LevelStats)> {
        self.levels
            .iter()
            .map(|lvl| {
                let mut s = LevelStats::default();
                for c in &lvl.caches {
                    s.hits += c.hits;
                    s.misses += c.misses;
                    s.writebacks += c.writebacks;
                }
                (lvl.spec.name, s)
            })
            .collect()
    }

    /// Zero all statistics (warm caches kept — call after a warm-up pass).
    pub fn reset_stats(&mut self) {
        for lvl in &mut self.levels {
            for c in &mut lvl.caches {
                c.reset_stats();
            }
        }
        self.dram_fills = 0;
        self.dram_writebacks = 0;
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level(n_threads: usize) -> Hierarchy {
        Hierarchy::new(
            &[
                LevelSpec {
                    name: "L1",
                    cfg: CacheConfig::new(1024, 2, 64),
                    scope: Scope::Private(1),
                },
                LevelSpec {
                    name: "LLC",
                    cfg: CacheConfig::new(16 * 1024, 8, 64),
                    scope: Scope::Shared,
                },
            ],
            n_threads,
        )
    }

    #[test]
    fn l1_hit_causes_no_dram_traffic() {
        let mut h = two_level(1);
        h.access(0, 0x100, false);
        assert_eq!(h.dram_fills, 1);
        h.access(0, 0x100, false);
        assert_eq!(h.dram_fills, 1);
        let stats = h.level_stats();
        assert_eq!(stats[0].1.hits, 1);
    }

    #[test]
    fn private_l1_is_per_thread_shared_llc_is_not() {
        let mut h = two_level(2);
        h.access(0, 0x200, false); // miss both, fill
        h.access(1, 0x200, false); // L1 miss (private), LLC hit
        assert_eq!(h.dram_fills, 1, "LLC absorbed the second thread");
        let stats = h.level_stats();
        assert_eq!(stats[0].1.misses, 2);
        assert_eq!(stats[1].1.hits, 1);
    }

    #[test]
    fn thread_groups_share_a_private_cache() {
        let h = Hierarchy::new(
            &[LevelSpec {
                name: "L2",
                cfg: CacheConfig::new(1024, 2, 64),
                scope: Scope::Private(2),
            }],
            4,
        );
        assert_eq!(h.levels[0].caches.len(), 2);
        assert_eq!(h.levels[0].cache_index(0), 0);
        assert_eq!(h.levels[0].cache_index(1), 0);
        assert_eq!(h.levels[0].cache_index(2), 1);
        assert_eq!(h.levels[0].cache_index(3), 1);
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut h = two_level(1);
        h.access_range(0, 32, 256, false); // spans lines 0..=4
        assert_eq!(h.accesses, 5);
    }

    #[test]
    fn dirty_llc_eviction_counts_as_dram_write() {
        // Tiny LLC only.
        let mut h = Hierarchy::new(
            &[LevelSpec {
                name: "LLC",
                cfg: CacheConfig::new(256, 2, 64), // 2 sets × 2 ways
                scope: Scope::Shared,
            }],
            1,
        );
        h.access(0, 0x000, true); // set 0, dirty
        h.access(0, 0x080, true); // set 0, dirty
        h.access(0, 0x100, false); // set 0 → evicts dirty 0x000
        assert_eq!(h.dram_writebacks, 1);
        assert_eq!(h.dram_write_bytes(), 64);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = two_level(1);
        h.access(0, 0x40, false);
        h.reset_stats();
        assert_eq!(h.dram_fills, 0);
        h.access(0, 0x40, false);
        assert_eq!(h.dram_fills, 0, "line still resident after reset");
    }

    #[test]
    fn working_set_fits_llc_but_not_l1() {
        let mut h = two_level(1);
        // 8 KB working set: > L1 (1 KB), < LLC (16 KB).
        for _pass in 0..3 {
            for addr in (0..8 * 1024u64).step_by(64) {
                h.access(0, addr, false);
            }
        }
        // First pass fills from DRAM; later passes are LLC hits.
        assert_eq!(h.dram_fills, 128);
        let stats = h.level_stats();
        assert!(stats[1].1.hits >= 256, "LLC absorbed re-walks");
    }
}
