//! Throughput prediction: a cache-aware roofline on top of simulated
//! DRAM traffic (paper Sec. VII).
//!
//! For one full evaluation (all N splines at one position) the node
//! performs the kernel's useful floating-point work plus a fixed
//! per-tile overhead, and moves `bytes_per_eval` to/from DRAM (measured
//! by [`crate::trace::simulate`]). Aggregate node throughput is the
//! lesser of two roofs:
//!
//! ```text
//! T_mem  = stream_bw / bytes_per_eval                      (evals/s)
//! T_comp = peak · eff(layout) / (flops + M·C_tile)         (evals/s)
//! T_pred = min(T_mem, T_comp) · N                          (orbital evals/s)
//! ```
//!
//! Calibration constants (documented in DESIGN.md):
//!
//! * `eff(layout)` — per-platform fractions of peak for vectorized SoA
//!   code vs the strided AoS baseline ([`Platform::eff_soa`] /
//!   [`Platform::eff_aos`]); the AoS values are pinned to the paper's
//!   Table IV row A so the *A step* is calibration, while the B and C
//!   steps remain genuine predictions of the traffic/overhead model;
//! * [`TILE_OVERHEAD_FLOPS`] — per-tile fixed cost (prefactor
//!   recomputation, line addressing, loop/call overhead). This is the
//!   paper's "amortized cost of redundant computations of the
//!   prefactors" that makes throughput rise with Nb on KNC/KNL
//!   (Fig. 7c) until the cache effects push back.

use crate::platform::Platform;
use crate::trace::SimStats;
use bspline::Layout;

/// FLOP-equivalent fixed cost of evaluating one tile at one position:
/// basis-weight recomputation (~300 FLOPs), 64 line-address setups, and
/// loop/call overhead, expressed in effective FLOPs at the SoA rate.
pub const TILE_OVERHEAD_FLOPS: f64 = 6000.0;

/// Which roof binds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// Bandwidth roof binds (DRAM traffic limits throughput).
    Memory,
    /// Compute roof binds (FLOP rate limits throughput).
    Compute,
}

/// Predicted node-level performance of one kernel configuration.
#[derive(Clone, Copy, Debug)]
pub struct Prediction {
    /// Orbital evaluations per second on the node (the paper's T).
    pub throughput: f64,
    /// Achieved GFLOP/s implied by the binding roof (useful work only).
    pub gflops: f64,
    /// DRAM traffic per evaluation (bytes).
    pub bytes_per_eval: f64,
    /// Arithmetic intensity vs DRAM traffic (FLOP/byte).
    pub intensity: f64,
    /// Bound.
    pub bound: Bound,
}

/// Predict node throughput.
///
/// * `flops_per_eval` — the *useful* work of one evaluation (all N
///   splines at one position); callers pass the SoA-canonical count for
///   every layout, with layout inefficiency folded into `eff`.
/// * `n_tiles` — AoSoA tile count M (1 for AoS/SoA), charged
///   [`TILE_OVERHEAD_FLOPS`] each.
/// * `active_fraction` — scales the compute roof when only part of the
///   node runs.
pub fn predict(
    platform: &Platform,
    layout: Layout,
    stats: &SimStats,
    flops_per_eval: f64,
    n_splines: usize,
    n_tiles: usize,
    active_fraction: f64,
) -> Prediction {
    assert!(flops_per_eval > 0.0);
    assert!(n_tiles >= 1);
    assert!((0.0..=1.0).contains(&active_fraction));
    let bytes = stats.bytes_per_eval();

    let bw = platform.stream_bw_gbs * 1e9;
    let t_mem = bw / bytes.max(1.0);

    let eff = match layout {
        Layout::Aos => platform.eff_aos,
        Layout::Soa | Layout::AoSoA => platform.eff_soa,
    };
    let flops_roof = platform.peak_sp_gflops() * 1e9 * eff * active_fraction;
    let work = flops_per_eval + n_tiles as f64 * TILE_OVERHEAD_FLOPS;
    let t_comp = flops_roof / work;

    let (evals_per_sec, bound) = if t_mem < t_comp {
        (t_mem, Bound::Memory)
    } else {
        (t_comp, Bound::Compute)
    };

    Prediction {
        throughput: evals_per_sec * n_splines as f64,
        gflops: evals_per_sec * flops_per_eval / 1e9,
        bytes_per_eval: bytes,
        intensity: flops_per_eval / bytes.max(1.0),
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{simulate, TraceConfig};
    use bspline::Kernel;

    fn stats(layout: Layout, n: usize, nb: usize, p: &Platform) -> SimStats {
        let mut cfg = TraceConfig::vgh(layout, n, nb);
        cfg.grid = (16, 16, 16);
        cfg.n_positions = 12;
        cfg.warmup = 4;
        cfg.kernel = Kernel::Vgh;
        simulate(&cfg, p)
    }

    /// SoA-canonical VGH flop count per eval.
    fn vgh_flops(n: usize) -> f64 {
        (16 * 44 * n) as f64
    }

    #[test]
    fn soa_beats_aos_on_every_platform() {
        for p in Platform::all() {
            let n = 512;
            let a = stats(Layout::Aos, n, n, &p);
            let s = stats(Layout::Soa, n, n, &p);
            let pa = predict(&p, Layout::Aos, &a, vgh_flops(n), n, 1, 1.0);
            let ps = predict(&p, Layout::Soa, &s, vgh_flops(n), n, 1, 1.0);
            assert!(
                ps.throughput > pa.throughput,
                "{}: SoA {} ≤ AoS {}",
                p.name,
                ps.throughput,
                pa.throughput
            );
        }
    }

    #[test]
    fn compute_bound_a_step_matches_calibration() {
        // With identical (cache-resident) traffic, the A speedup reduces
        // to eff_soa/eff_aos — the Table IV row-A calibration (KNL is
        // calibrated compute/compute; BDW's is anchored at the
        // memory-bound SoA point instead).
        let p = Platform::knl();
        let n = 128;
        let s = stats(Layout::Soa, n, n, &p);
        let pa = predict(&p, Layout::Aos, &s, vgh_flops(n), n, 1, 1.0);
        let ps = predict(&p, Layout::Soa, &s, vgh_flops(n), n, 1, 1.0);
        if pa.bound == Bound::Compute && ps.bound == Bound::Compute {
            let ratio = ps.throughput / pa.throughput;
            assert!((ratio - 1.7).abs() < 1e-9, "ratio {ratio}");
        }
    }

    #[test]
    fn tile_overhead_penalizes_tiny_tiles() {
        let p = Platform::knl();
        let n = 2048;
        let s = stats(Layout::AoSoA, n, 16, &p);
        let few = predict(&p, Layout::AoSoA, &s, vgh_flops(n), n, 4, 1.0);
        let many = predict(&p, Layout::AoSoA, &s, vgh_flops(n), n, 128, 1.0);
        assert!(few.throughput > many.throughput);
    }

    #[test]
    fn memory_bound_when_bandwidth_is_tiny() {
        let mut p = Platform::bgq();
        p.stream_bw_gbs = 1e-9;
        let s = stats(Layout::Soa, 256, 256, &p);
        let pred = predict(&p, Layout::Soa, &s, vgh_flops(256), 256, 1, 1.0);
        assert_eq!(pred.bound, Bound::Memory);
    }

    #[test]
    fn compute_bound_when_bandwidth_is_huge() {
        let mut p = Platform::bgq();
        p.stream_bw_gbs = 1e9;
        let s = stats(Layout::Soa, 256, 256, &p);
        let pred = predict(&p, Layout::Soa, &s, vgh_flops(256), 256, 1, 1.0);
        assert_eq!(pred.bound, Bound::Compute);
    }

    #[test]
    fn intensity_is_flops_over_bytes() {
        let p = Platform::knl();
        let s = stats(Layout::Soa, 128, 128, &p);
        let pred = predict(&p, Layout::Soa, &s, vgh_flops(128), 128, 1, 1.0);
        assert!((pred.intensity - vgh_flops(128) / pred.bytes_per_eval).abs() < 1e-9);
    }

    #[test]
    fn active_fraction_scales_compute_roof() {
        let mut p = Platform::knl();
        p.stream_bw_gbs = 1e9; // force compute bound
        let s = stats(Layout::Soa, 128, 128, &p);
        let full = predict(&p, Layout::Soa, &s, vgh_flops(128), 128, 1, 1.0);
        let half = predict(&p, Layout::Soa, &s, vgh_flops(128), 128, 1, 0.5);
        assert!((full.throughput / half.throughput - 2.0).abs() < 1e-9);
    }
}
