//! Versioned, std-only checkpoint format for DMC campaigns.
//!
//! A checkpoint file is a single *frame*:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"QMCCKPT\0"
//! 8       4     format version (little-endian u32, currently 1)
//! 12      8     payload length in bytes (little-endian u64)
//! 20      n     payload (opaque to this layer)
//! 20+n    4     CRC-32 (IEEE) over bytes [0, 20+n)
//! ```
//!
//! All integers are little-endian; `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so a round-trip is *bit-exact* —
//! the property the campaign resume-equivalence suite depends on.
//!
//! [`CheckpointStore`] manages a directory of per-generation frames with
//! crash-safe durability:
//!
//! * writes go to a `.tmp` sibling first and are published with an
//!   atomic `rename`, so a crash mid-write never replaces a good file;
//! * [`CheckpointStore::latest_valid`] scans generations newest-first
//!   and returns the first frame whose CRC verifies, silently skipping
//!   torn or corrupt files — the "last good fallback" of the recovery
//!   story;
//! * fault injection (torn writes, bit flips — see
//!   [`super::CampaignFaultPlan`]) mangles the frame *after* framing,
//!   exactly like a misbehaving disk would.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use super::fault::CampaignFaultPlan;

/// Frame magic: identifies a campaign checkpoint file.
pub const MAGIC: [u8; 8] = *b"QMCCKPT\0";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// Why a checkpoint failed to load or store.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem error.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// CRC mismatch: torn write or corruption.
    BadCrc {
        /// CRC stored in the frame trailer.
        stored: u32,
        /// CRC recomputed over the frame body.
        computed: u32,
    },
    /// The file ends before the declared frame does.
    Truncated,
    /// Structurally invalid payload (decoder context in the message).
    Malformed(&'static str),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a campaign checkpoint (bad magic)"),
            CkptError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CkptError::BadCrc { stored, computed } => write!(
                f,
                "checkpoint CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::Malformed(what) => write!(f, "malformed checkpoint payload: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), std-only.
///
/// Bitwise implementation — checkpoints are a few KiB, so table-driven
/// speed buys nothing here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern (bit-exact round-trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Sequential payload decoder; every accessor checks bounds and returns
/// [`CkptError::Truncated`] instead of panicking on short input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Next `u64` narrowed to `usize`.
    pub fn len_u64(&mut self) -> Result<usize, CkptError> {
        usize::try_from(self.u64()?).map_err(|_| CkptError::Malformed("length overflows usize"))
    }

    /// Next `f64` (from its bit pattern).
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Wrap `payload` in a framed checkpoint (magic + version + length +
/// payload + CRC).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Validate a framed checkpoint and return its payload slice.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], CkptError> {
    if bytes.len() < MAGIC.len() {
        return Err(CkptError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    let version = r.u32()?;
    if version != VERSION {
        return Err(CkptError::BadVersion(version));
    }
    let payload_len = r.len_u64()?;
    let header = MAGIC.len() + 12;
    let framed = header
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(4))
        .ok_or(CkptError::Malformed("frame length overflows"))?;
    if bytes.len() < framed {
        return Err(CkptError::Truncated);
    }
    let body = &bytes[..header + payload_len];
    let stored = u32::from_le_bytes(
        bytes[header + payload_len..framed]
            .try_into()
            .expect("4 trailer bytes"),
    );
    let computed = crc32(body);
    if stored != computed {
        return Err(CkptError::BadCrc { stored, computed });
    }
    Ok(&bytes[header..header + payload_len])
}

/// A directory of per-generation checkpoint frames with atomic publish
/// and newest-valid-first recovery.
pub struct CheckpointStore {
    dir: PathBuf,
    writes: usize,
}

const FILE_PREFIX: &str = "ckpt-";
const FILE_SUFFIX: &str = ".qmc";

impl CheckpointStore {
    /// Open (creating if needed) the checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, writes: 0 })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of `write` calls so far (the fault plan's write index).
    pub fn writes(&self) -> usize {
        self.writes
    }

    fn path_for(&self, generation: u64) -> PathBuf {
        self.dir
            .join(format!("{FILE_PREFIX}{generation:010}{FILE_SUFFIX}"))
    }

    /// Frame `payload` and publish it as the checkpoint for
    /// `generation`: write to a `.tmp` sibling, flush, then atomically
    /// rename into place. `faults` may mangle the persisted bytes
    /// (torn write / bit flip) to emulate storage failures — the
    /// mangled frame is what lands on disk, exactly as a real fault
    /// would leave it.
    pub fn write(
        &mut self,
        generation: u64,
        payload: &[u8],
        faults: &CampaignFaultPlan,
    ) -> Result<PathBuf, CkptError> {
        let bytes = faults.mangle(self.writes, frame(payload));
        self.writes += 1;
        let path = self.path_for(generation);
        let tmp = path.with_extension("qmc.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// All published checkpoint generations, ascending. Temp files and
    /// foreign names are ignored.
    pub fn list(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix(FILE_PREFIX)
                .and_then(|s| s.strip_suffix(FILE_SUFFIX))
            else {
                continue;
            };
            if let Ok(generation) = stem.parse::<u64>() {
                out.push((generation, entry.path()));
            }
        }
        out.sort_by_key(|&(g, _)| g);
        Ok(out)
    }

    /// The newest checkpoint whose frame validates, as
    /// `(generation, payload)`. Torn or corrupt frames (bad magic, bad
    /// CRC, truncation) are skipped — the scan falls back to the last
    /// good one. `None` if no valid checkpoint exists.
    pub fn latest_valid(&self) -> Result<Option<(u64, Vec<u8>)>, CkptError> {
        let mut files = self.list()?;
        files.reverse();
        for (generation, path) in files {
            let bytes = fs::read(&path)?;
            if let Ok(payload) = unframe(&bytes) {
                return Ok(Some((generation, payload.to_vec())));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "qmc-ckpt-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_bit_exact() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 42);
        put_f64(&mut payload, -0.1f64);
        put_f64(&mut payload, f64::MIN_POSITIVE);
        let framed = frame(&payload);
        let back = unframe(&framed).expect("valid frame");
        assert_eq!(back, &payload[..]);
        let mut r = Reader::new(back);
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn unframe_rejects_damage() {
        let framed = frame(b"some campaign payload");
        // Truncation at every boundary inside the frame.
        for keep in [0, 4, 11, 19, framed.len() - 1] {
            assert!(
                matches!(
                    unframe(&framed[..keep]),
                    Err(CkptError::Truncated) | Err(CkptError::BadCrc { .. })
                ),
                "keep={keep}"
            );
        }
        // A flipped bit anywhere breaks either magic, version, length,
        // payload CRC, or the stored CRC itself.
        for byte in [0, 9, 15, 25, framed.len() - 1] {
            let mut bad = framed.clone();
            bad[byte] ^= 0x10;
            assert!(unframe(&bad).is_err(), "byte={byte}");
        }
        // Version from the future.
        let mut future = framed.clone();
        future[8] = 0xEE;
        assert!(matches!(
            unframe(&future),
            Err(CkptError::BadVersion(_)) | Err(CkptError::BadCrc { .. })
        ));
    }

    #[test]
    fn store_publishes_atomically_and_scans_newest_valid() {
        let dir = tmpdir("scan");
        let mut store = CheckpointStore::new(&dir).unwrap();
        let plan = CampaignFaultPlan::default();
        store.write(1, b"gen one", &plan).unwrap();
        store.write(2, b"gen two", &plan).unwrap();
        store.write(3, b"gen three", &plan).unwrap();
        // A stray temp file and a foreign file must be ignored.
        fs::write(dir.join("ckpt-0000000009.qmc.tmp"), b"garbage").unwrap();
        fs::write(dir.join("notes.txt"), b"unrelated").unwrap();
        let (generation, payload) = store.latest_valid().unwrap().expect("some");
        assert_eq!((generation, payload.as_slice()), (3, &b"gen three"[..]));
        assert_eq!(
            store.list().unwrap().iter().map(|x| x.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Corrupt the newest on disk: the scan falls back to gen 2.
        let newest = dir.join("ckpt-0000000003.qmc");
        let mut bytes = fs::read(&newest).unwrap();
        bytes.truncate(bytes.len() - 3);
        fs::write(&newest, &bytes).unwrap();
        let (generation, payload) = store.latest_valid().unwrap().expect("fallback");
        assert_eq!((generation, payload.as_slice()), (2, &b"gen two"[..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_reports_truncation_not_panic() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(matches!(r.u64(), Err(CkptError::Truncated)));
        // Position is unchanged after a failed read.
        assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
    }
}
