//! Checkpointable DMC campaign driver (the campaign half of the
//! paper's DMC milestone).
//!
//! A *campaign* is a long population-controlled DMC run that must
//! survive interruption: the driver couples a [`DmcPopulation`]
//! (weights, branching, trial-energy feedback) to a [`Propagator`]
//! holding the per-walker configuration state, records a
//! per-generation statistics ring, and periodically serializes the
//! **full resume closure** — walker weights/ages, population-control
//! state, statistics ring, the branching RNG's exact xoshiro256**
//! state, and the propagator's own state — through the
//! [`checkpoint`] format (header + CRC, atomic temp-file + rename,
//! newest-valid fallback scan).
//!
//! # Resume-equivalence contract
//!
//! For a deterministic propagator, one generation is a pure function
//! of `(campaign state, generation index)`: the RNG streams are part
//! of the state (exact-state export, see [`rand::rngs::StdRng::state`])
//! and the wavefunction propagator re-derives all incremental caches
//! from electron positions at each generation start
//! ([`TrialWaveFunction::evaluate_log`] rebuilds distance tables,
//! Jastrow sums and determinants from positions alone). Therefore a
//! campaign restored from any checkpoint continues **bit-identically**
//! to the uninterrupted run — same walker populations, same mixed
//! estimators, same generation statistics, down to the last ulp. The
//! suite in `tests/integration_campaign.rs` proves this property over
//! random seeds × populations × checkpoint intervals × kill points,
//! and exercises the torn-write/bit-flip fallback through
//! [`CampaignFaultPlan`].

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::drivers::dmc::{DmcConfig, DmcPopulation, DmcSnapshot, DmcWalker};
use crate::drivers::vmc::{run_vmc, VmcConfig};
use crate::wavefunction::TrialWaveFunction;

pub mod checkpoint;
pub mod fault;

pub use checkpoint::{CheckpointStore, CkptError, Reader};
pub use fault::{BitFlip, CampaignFaultPlan, TornWrite};

use checkpoint::{put_f64, put_u64};

/// Statistics of one completed DMC generation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenStats {
    /// Generation index (1-based: recorded after the step completes).
    pub generation: u64,
    /// Post-branching population size.
    pub population: u64,
    /// Branching births this generation.
    pub births: u64,
    /// Branching deaths this generation.
    pub deaths: u64,
    /// Weighted mean local energy after reweighting.
    pub e_mixed: f64,
    /// Trial energy after the feedback update.
    pub trial_energy: f64,
    /// Total post-reweight ensemble weight.
    pub total_weight: f64,
}

impl GenStats {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.generation);
        put_u64(out, self.population);
        put_u64(out, self.births);
        put_u64(out, self.deaths);
        put_f64(out, self.e_mixed);
        put_f64(out, self.trial_energy);
        put_f64(out, self.total_weight);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            generation: r.u64()?,
            population: r.u64()?,
            births: r.u64()?,
            deaths: r.u64()?,
            e_mixed: r.f64()?,
            trial_energy: r.f64()?,
            total_weight: r.f64()?,
        })
    }
}

/// Bounded ring of the most recent [`GenStats`], checkpointed with the
/// campaign so a resumed run reports the same trailing window.
#[derive(Clone, Debug, PartialEq)]
pub struct GenStatsRing {
    cap: usize,
    data: VecDeque<GenStats>,
}

impl GenStatsRing {
    /// An empty ring retaining the last `cap` generations (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "ring capacity must be positive");
        Self {
            cap,
            data: VecDeque::with_capacity(cap),
        }
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Generations currently retained.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append, evicting the oldest entry when full.
    pub fn push(&mut self, stats: GenStats) {
        if self.data.len() == self.cap {
            self.data.pop_front();
        }
        self.data.push_back(stats);
    }

    /// Oldest-to-newest iteration.
    pub fn iter(&self) -> impl Iterator<Item = &GenStats> {
        self.data.iter()
    }

    /// The most recent entry.
    pub fn latest(&self) -> Option<&GenStats> {
        self.data.back()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.cap as u64);
        put_u64(out, self.data.len() as u64);
        for s in &self.data {
            s.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let cap = r.len_u64()?;
        if cap == 0 {
            return Err(CkptError::Malformed("zero ring capacity"));
        }
        let len = r.len_u64()?;
        if len > cap {
            return Err(CkptError::Malformed("ring length exceeds capacity"));
        }
        let mut ring = GenStatsRing::new(cap);
        for _ in 0..len {
            ring.data.push_back(GenStats::decode(r)?);
        }
        Ok(ring)
    }
}

/// Per-walker configuration state driven by the campaign.
///
/// The campaign keeps `len()` in lockstep with the walker population:
/// each generation it calls [`Propagator::propagate`] for fresh local
/// energies (slot-indexed), lets the population branch, then replays
/// the branching on the propagator through [`Propagator::rebranch`].
///
/// For the resume-equivalence contract to hold, `propagate` must be a
/// pure function of `(self, generation)` — any RNG it uses belongs in
/// `encode`/`decode`, or must be derived from `generation` alone.
pub trait Propagator {
    /// Number of walker slots.
    fn len(&self) -> usize;

    /// Whether no slots exist.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advance every slot one generation; `out[i]` is slot `i`'s local
    /// energy.
    fn propagate(&mut self, generation: u64) -> Vec<f64>;

    /// Replay a branching step: after the call, slot `i` must hold a
    /// copy of pre-branch slot `parents[i]` (indices may repeat; the
    /// slot count becomes `parents.len()`).
    fn rebranch(&mut self, parents: &[usize]);

    /// Serialize all state `propagate` depends on.
    fn encode(&self, out: &mut Vec<u8>);

    /// Restore state written by [`Propagator::encode`].
    fn decode(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError>;
}

/// A cheap deterministic [`Propagator`] for population-dynamics and
/// crash-recovery tests: each slot is one coordinate in a quadratic
/// well, jittered by a checkpointed RNG, with `E = ½x²`.
#[derive(Clone, Debug)]
pub struct SyntheticPropagator {
    xs: Vec<f64>,
    rng: StdRng,
    sigma: f64,
}

impl SyntheticPropagator {
    /// `n` slots with deterministically spread initial coordinates and
    /// jitter amplitude `sigma`.
    pub fn new(n: usize, seed: u64, sigma: f64) -> Self {
        Self {
            xs: (0..n).map(|i| ((i as f64) * 0.7391 + 0.2).sin()).collect(),
            rng: StdRng::seed_from_u64(seed),
            sigma,
        }
    }

    /// Slot coordinates (test observability).
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }
}

impl Propagator for SyntheticPropagator {
    fn len(&self) -> usize {
        self.xs.len()
    }

    fn propagate(&mut self, _generation: u64) -> Vec<f64> {
        for x in &mut self.xs {
            *x = 0.95 * *x + self.sigma * (self.rng.random::<f64>() - 0.5);
        }
        self.xs.iter().map(|&x| 0.5 * x * x).collect()
    }

    fn rebranch(&mut self, parents: &[usize]) {
        self.xs = parents.iter().map(|&p| self.xs[p]).collect();
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.xs.len() as u64);
        for &x in &self.xs {
            put_f64(out, x);
        }
        for w in self.rng.state() {
            put_u64(out, w);
        }
        put_f64(out, self.sigma);
    }

    fn decode(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let n = r.len_u64()?;
        let mut xs = Vec::with_capacity(n);
        for _ in 0..n {
            xs.push(r.f64()?);
        }
        let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        if state == [0; 4] {
            return Err(CkptError::Malformed("all-zero RNG state"));
        }
        self.sigma = r.f64()?;
        self.xs = xs;
        self.rng = StdRng::from_state(state);
        Ok(())
    }
}

/// The production [`Propagator`]: a pool of Slater–Jastrow
/// [`TrialWaveFunction`] walkers advanced by particle-by-particle VMC
/// sweeps on the single-electron fast path, measuring the kinetic
/// local energy.
///
/// Each generation, every slot's incremental caches are rebuilt from
/// its electron positions (`evaluate_log`), so the serialized state is
/// *just the positions* — Sherman–Morrison rounding history cannot leak
/// across a checkpoint boundary, which is what makes resume bit-exact
/// on the real wavefunction path, not only on synthetic walkers.
pub struct WalkerPropagator<F: FnMut() -> TrialWaveFunction<f64>> {
    pool: Vec<TrialWaveFunction<f64>>,
    active: usize,
    factory: F,
    step_size: f64,
    seed: u64,
}

impl<F: FnMut() -> TrialWaveFunction<f64>> WalkerPropagator<F> {
    /// `n` walker slots built by `factory` (which must produce walkers
    /// over the same system: equal electron counts). Moves use a cubic
    /// proposal of amplitude `step_size`; `seed` derives the
    /// per-(generation, slot) sweep seeds.
    pub fn new(mut factory: F, n: usize, step_size: f64, seed: u64) -> Self {
        let pool: Vec<_> = (0..n).map(|_| factory()).collect();
        let n_el = pool.first().map_or(0, |w| w.n_electrons());
        assert!(
            pool.iter().all(|w| w.n_electrons() == n_el),
            "factory produced walkers over different systems"
        );
        Self {
            pool,
            active: n,
            factory,
            step_size,
            seed,
        }
    }

    fn move_seed(&self, generation: u64, slot: usize) -> u64 {
        self.seed
            ^ generation.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (slot as u64).wrapping_mul(0xD1B5_4A32_D192_ED03)
    }

    fn positions_of(&self, slot: usize) -> Vec<[f64; 3]> {
        let el = self.pool[slot].electrons();
        (0..el.len()).map(|i| el.get(i)).collect()
    }

    /// The active walker at `slot` (test observability).
    pub fn walker(&self, slot: usize) -> &TrialWaveFunction<f64> {
        assert!(slot < self.active);
        &self.pool[slot]
    }
}

impl<F: FnMut() -> TrialWaveFunction<f64>> Propagator for WalkerPropagator<F> {
    fn len(&self) -> usize {
        self.active
    }

    fn propagate(&mut self, generation: u64) -> Vec<f64> {
        let mut energies = Vec::with_capacity(self.active);
        for slot in 0..self.active {
            let seed = self.move_seed(generation, slot);
            let wf = &mut self.pool[slot];
            // Rebuild every incremental cache from positions: the
            // resume-equivalence linchpin (see the type-level docs).
            wf.evaluate_log();
            let res = run_vmc(
                wf,
                &VmcConfig {
                    n_steps: 1,
                    step_size: self.step_size,
                    seed,
                },
            );
            energies.push(res.kinetic);
        }
        energies
    }

    fn rebranch(&mut self, parents: &[usize]) {
        let snapshots: Vec<Vec<[f64; 3]>> = parents
            .iter()
            .map(|&p| {
                assert!(p < self.active, "parent index out of range");
                self.positions_of(p)
            })
            .collect();
        while self.pool.len() < parents.len() {
            self.pool.push((self.factory)());
        }
        for (slot, pos) in snapshots.iter().enumerate() {
            self.pool[slot].set_electron_positions(pos);
        }
        self.active = parents.len();
    }

    fn encode(&self, out: &mut Vec<u8>) {
        let n_el = self.pool.first().map_or(0, |w| w.n_electrons());
        put_u64(out, self.active as u64);
        put_u64(out, n_el as u64);
        for slot in 0..self.active {
            for r in self.positions_of(slot) {
                put_f64(out, r[0]);
                put_f64(out, r[1]);
                put_f64(out, r[2]);
            }
        }
    }

    fn decode(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let active = r.len_u64()?;
        let n_el = r.len_u64()?;
        let have = self.pool.first().map_or(0, |w| w.n_electrons());
        if n_el != have {
            return Err(CkptError::Malformed("electron count mismatch"));
        }
        let mut all = Vec::with_capacity(active);
        for _ in 0..active {
            let mut pos = Vec::with_capacity(n_el);
            for _ in 0..n_el {
                pos.push([r.f64()?, r.f64()?, r.f64()?]);
            }
            all.push(pos);
        }
        while self.pool.len() < active {
            self.pool.push((self.factory)());
        }
        for (slot, pos) in all.iter().enumerate() {
            self.pool[slot].set_electron_positions(pos);
        }
        self.active = active;
        Ok(())
    }
}

/// How far to run and when to checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Total generations the campaign should reach.
    pub generations: u64,
    /// Checkpoint after every this-many generations (`0` = never).
    pub checkpoint_every: u64,
    /// Scripted failures for this run (default: none).
    pub faults: CampaignFaultPlan,
}

impl CampaignConfig {
    /// Run `generations` generations, checkpointing every
    /// `checkpoint_every`, with no injected faults.
    pub fn new(generations: u64, checkpoint_every: u64) -> Self {
        Self {
            generations,
            checkpoint_every,
            faults: CampaignFaultPlan::default(),
        }
    }
}

/// How a [`Campaign::run`] call ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Reached `CampaignConfig::generations`.
    Completed,
    /// Stopped by [`CampaignFaultPlan::kill_at_generation`].
    Killed {
        /// Generations completed when the kill fired.
        generation: u64,
    },
}

/// Result of one [`Campaign::run`] call.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Statistics of every generation executed *by this call* (a
    /// resumed run reports only post-resume generations).
    pub stats: Vec<GenStats>,
}

/// A checkpointable DMC campaign: population control + configuration
/// propagation + statistics + (de)serialization. See the module docs
/// for the resume-equivalence contract.
pub struct Campaign<P: Propagator> {
    pop: DmcPopulation,
    prop: P,
    stats: GenStatsRing,
    generation: u64,
}

impl<P: Propagator> Campaign<P> {
    /// Start a fresh campaign: `prop` must hold exactly
    /// `cfg.target_population` slots (one per initial walker).
    pub fn new(cfg: DmcConfig, initial_energy: f64, prop: P, stats_capacity: usize) -> Self {
        assert_eq!(
            prop.len(),
            cfg.target_population,
            "propagator slots must match the initial population"
        );
        Self {
            pop: DmcPopulation::new(cfg, initial_energy),
            prop,
            stats: GenStatsRing::new(stats_capacity),
            generation: 0,
        }
    }

    /// Generations completed so far.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The walker population.
    pub fn population(&self) -> &DmcPopulation {
        &self.pop
    }

    /// The configuration propagator.
    pub fn propagator(&self) -> &P {
        &self.prop
    }

    /// The retained per-generation statistics.
    pub fn stats(&self) -> &GenStatsRing {
        &self.stats
    }

    /// Advance one generation: propagate → measure → branch → replay
    /// the branching on the propagator → record statistics.
    pub fn step(&mut self) -> GenStats {
        let energies = self.prop.propagate(self.generation);
        assert_eq!(energies.len(), self.pop.len(), "propagator out of sync");
        let mut parents = Vec::new();
        let step = self.pop.step_traced(|slot| energies[slot], &mut parents);
        self.prop.rebranch(&parents);
        self.generation += 1;
        let gs = GenStats {
            generation: self.generation,
            population: self.pop.len() as u64,
            births: step.births as u64,
            deaths: step.deaths as u64,
            e_mixed: step.e_mixed,
            trial_energy: self.pop.trial_energy,
            total_weight: step.total_weight,
        };
        self.stats.push(gs);
        gs
    }

    /// Run until `cfg.generations`, checkpointing into `store` every
    /// `cfg.checkpoint_every` generations and honouring the fault plan
    /// (storage faults mangle writes; the kill stops the driver as if
    /// the process died — in-memory state is simply abandoned).
    pub fn run(
        &mut self,
        cfg: &CampaignConfig,
        mut store: Option<&mut CheckpointStore>,
    ) -> Result<RunReport, CkptError> {
        let mut report = RunReport {
            outcome: RunOutcome::Completed,
            stats: Vec::new(),
        };
        while self.generation < cfg.generations {
            let gs = self.step();
            report.stats.push(gs);
            if let Some(store) = store.as_deref_mut() {
                if cfg.checkpoint_every > 0
                    && self.generation.is_multiple_of(cfg.checkpoint_every)
                {
                    store.write(self.generation, &self.encode(), &cfg.faults)?;
                }
            }
            if cfg.faults.kill_at_generation == Some(self.generation) {
                report.outcome = RunOutcome::Killed {
                    generation: self.generation,
                };
                break;
            }
        }
        Ok(report)
    }

    /// Serialize the full resume closure (pair with
    /// [`Campaign::decode`]).
    pub fn encode(&self) -> Vec<u8> {
        let snap = self.pop.snapshot();
        let mut out = Vec::new();
        put_u64(&mut out, self.generation);
        put_u64(&mut out, snap.cfg.target_population as u64);
        put_f64(&mut out, snap.cfg.tau);
        put_f64(&mut out, snap.cfg.feedback);
        put_f64(&mut out, snap.cfg.max_ratio);
        put_u64(&mut out, snap.cfg.seed);
        put_f64(&mut out, snap.trial_energy);
        put_u64(&mut out, snap.next_id as u64);
        for w in snap.rng_state {
            put_u64(&mut out, w);
        }
        put_u64(&mut out, snap.walkers.len() as u64);
        for w in &snap.walkers {
            put_u64(&mut out, w.id as u64);
            put_f64(&mut out, w.weight);
            put_u64(&mut out, w.age as u64);
        }
        self.stats.encode(&mut out);
        let mut prop_bytes = Vec::new();
        self.prop.encode(&mut prop_bytes);
        put_u64(&mut out, prop_bytes.len() as u64);
        out.extend_from_slice(&prop_bytes);
        out
    }

    /// Rebuild a campaign from [`Campaign::encode`] bytes. `prop` is a
    /// freshly-constructed propagator over the same system; its state
    /// is overwritten by the checkpoint.
    pub fn decode(mut prop: P, payload: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(payload);
        let generation = r.u64()?;
        let cfg = DmcConfig {
            target_population: r.len_u64()?,
            tau: r.f64()?,
            feedback: r.f64()?,
            max_ratio: r.f64()?,
            seed: r.u64()?,
        };
        let trial_energy = r.f64()?;
        let next_id = r.len_u64()?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        if rng_state == [0; 4] {
            return Err(CkptError::Malformed("all-zero RNG state"));
        }
        let n_walkers = r.len_u64()?;
        let mut walkers = Vec::with_capacity(n_walkers);
        for _ in 0..n_walkers {
            walkers.push(DmcWalker {
                id: r.len_u64()?,
                weight: r.f64()?,
                age: r.len_u64()?,
            });
        }
        if walkers.is_empty() {
            return Err(CkptError::Malformed("empty walker population"));
        }
        let stats = GenStatsRing::decode(&mut r)?;
        let prop_len = r.len_u64()?;
        let prop_bytes = r.bytes(prop_len)?;
        if r.remaining() != 0 {
            return Err(CkptError::Malformed("trailing bytes"));
        }
        let mut pr = Reader::new(prop_bytes);
        prop.decode(&mut pr)?;
        if pr.remaining() != 0 {
            return Err(CkptError::Malformed("trailing propagator bytes"));
        }
        if prop.len() != walkers.len() {
            return Err(CkptError::Malformed("propagator/population size mismatch"));
        }
        Ok(Self {
            pop: DmcPopulation::from_snapshot(DmcSnapshot {
                cfg,
                walkers,
                trial_energy,
                next_id,
                rng_state,
            }),
            prop,
            stats,
            generation,
        })
    }

    /// Resume from the newest CRC-valid checkpoint in `store`
    /// (`Ok(None)` when none exists — start fresh instead).
    pub fn resume_latest(store: &CheckpointStore, prop: P) -> Result<Option<Self>, CkptError> {
        match store.latest_valid()? {
            None => Ok(None),
            Some((_generation, payload)) => Ok(Some(Self::decode(prop, &payload)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dmc_cfg(pop: usize, seed: u64) -> DmcConfig {
        DmcConfig {
            target_population: pop,
            tau: 0.05,
            feedback: 1.0,
            max_ratio: 4.0,
            seed,
        }
    }

    fn synthetic_campaign(pop: usize, seed: u64) -> Campaign<SyntheticPropagator> {
        Campaign::new(
            dmc_cfg(pop, seed),
            0.2,
            SyntheticPropagator::new(pop, seed ^ 0xABCD, 0.4),
            8,
        )
    }

    fn assert_bit_identical(a: &Campaign<SyntheticPropagator>, b: &Campaign<SyntheticPropagator>) {
        assert_eq!(a.generation(), b.generation());
        assert_eq!(a.population().snapshot(), b.population().snapshot());
        assert_eq!(
            a.propagator()
                .xs()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            b.propagator()
                .xs()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn encode_decode_roundtrip_then_identical_evolution() {
        let mut c = synthetic_campaign(24, 7);
        for _ in 0..5 {
            c.step();
        }
        let bytes = c.encode();
        let mut d =
            Campaign::decode(SyntheticPropagator::new(24, 0, 0.0), &bytes).expect("decode");
        assert_bit_identical(&c, &d);
        for _ in 0..7 {
            let gc = c.step();
            let gd = d.step();
            assert_eq!(gc.e_mixed.to_bits(), gd.e_mixed.to_bits());
            assert_eq!(gc, gd);
        }
        assert_bit_identical(&c, &d);
    }

    #[test]
    fn kill_then_resume_matches_golden() {
        let dir = std::env::temp_dir().join(format!("qmc-campaign-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut golden = synthetic_campaign(16, 3);
        let golden_report = golden
            .run(&CampaignConfig::new(20, 1), None)
            .expect("golden");
        assert_eq!(golden_report.outcome, RunOutcome::Completed);

        let mut store = CheckpointStore::new(&dir).unwrap();
        let mut victim = synthetic_campaign(16, 3);
        let mut cfg = CampaignConfig::new(20, 3);
        cfg.faults = CampaignFaultPlan::kill_at(8);
        let report = victim.run(&cfg, Some(&mut store)).expect("victim");
        assert_eq!(report.outcome, RunOutcome::Killed { generation: 8 });
        drop(victim); // the "process" died; only the store survives

        let mut resumed =
            Campaign::resume_latest(&store, SyntheticPropagator::new(16, 0, 0.0))
                .expect("scan")
                .expect("a checkpoint exists");
        // Kill at 8 with interval 3 → last checkpoint at generation 6.
        assert_eq!(resumed.generation(), 6);
        let resumed_report = resumed
            .run(&CampaignConfig::new(20, 3), Some(&mut store))
            .expect("resume");
        assert_eq!(resumed_report.outcome, RunOutcome::Completed);
        assert_bit_identical(&golden, &resumed);
        // Per-generation stats from the resume point match the golden
        // run exactly.
        assert_eq!(&golden_report.stats[6..], &resumed_report.stats[..]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = GenStatsRing::new(3);
        for g in 1..=5u64 {
            ring.push(GenStats {
                generation: g,
                population: 1,
                births: 0,
                deaths: 0,
                e_mixed: 0.0,
                trial_energy: 0.0,
                total_weight: 1.0,
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(
            ring.iter().map(|s| s.generation).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(ring.latest().unwrap().generation, 5);
    }

    #[test]
    fn decode_rejects_structural_damage() {
        let mut c = synthetic_campaign(8, 9);
        c.step();
        let bytes = c.encode();
        // Truncation anywhere inside the payload is caught.
        for keep in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Campaign::<SyntheticPropagator>::decode(
                    SyntheticPropagator::new(8, 0, 0.0),
                    &bytes[..keep]
                )
                .is_err(),
                "keep={keep}"
            );
        }
        // Trailing garbage is caught too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Campaign::<SyntheticPropagator>::decode(
            SyntheticPropagator::new(8, 0, 0.0),
            &long
        )
        .is_err());
    }
}
