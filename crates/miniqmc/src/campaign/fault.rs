//! Fault injection for the campaign crash-recovery suite.
//!
//! A [`CampaignFaultPlan`] scripts the failures a long campaign must
//! survive, so tests can drive them deterministically:
//!
//! * **kill** — the driver stops after a chosen generation, as if the
//!   process received `SIGKILL` (checked by [`super::Campaign::run`]);
//! * **torn write** — the *n*-th checkpoint write persists only a
//!   prefix of the frame, like a crash mid-`write(2)`;
//! * **bit flip** — the *n*-th checkpoint write lands with one bit
//!   inverted, like silent media corruption.
//!
//! Torn writes and bit flips mangle the bytes *after* framing (see
//! [`super::checkpoint::CheckpointStore::write`]), so the CRC trailer is
//! computed over the good frame and the damage is exactly what the scan
//! must detect and skip.

/// Truncate the `nth_write`-th checkpoint to its first `keep_bytes`
/// bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornWrite {
    /// Zero-based index into the store's write sequence.
    pub nth_write: usize,
    /// Bytes of the frame that reach the disk.
    pub keep_bytes: usize,
}

/// Invert one bit of the `nth_write`-th checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitFlip {
    /// Zero-based index into the store's write sequence.
    pub nth_write: usize,
    /// Byte offset of the flip (clamped to the frame length).
    pub byte_offset: usize,
    /// Bit index within the byte (0–7).
    pub bit: u8,
}

/// A scripted failure schedule for one campaign run. The default plan
/// injects nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CampaignFaultPlan {
    /// Stop the driver once this many generations have completed
    /// (emulates `SIGKILL`; the in-memory state is simply dropped).
    pub kill_at_generation: Option<u64>,
    /// Torn checkpoint write.
    pub torn_write: Option<TornWrite>,
    /// Single-bit checkpoint corruption.
    pub bit_flip: Option<BitFlip>,
}

impl CampaignFaultPlan {
    /// A plan that only kills the driver after `generation` generations.
    pub fn kill_at(generation: u64) -> Self {
        Self {
            kill_at_generation: Some(generation),
            ..Self::default()
        }
    }

    /// Apply the storage faults scheduled for `write_index` to a framed
    /// checkpoint, returning the bytes that actually reach the disk.
    pub fn mangle(&self, write_index: usize, mut bytes: Vec<u8>) -> Vec<u8> {
        if let Some(t) = self.torn_write {
            if t.nth_write == write_index {
                bytes.truncate(t.keep_bytes);
            }
        }
        if let Some(f) = self.bit_flip {
            if f.nth_write == write_index && !bytes.is_empty() {
                let at = f.byte_offset.min(bytes.len() - 1);
                bytes[at] ^= 1 << (f.bit & 7);
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_passthrough() {
        let plan = CampaignFaultPlan::default();
        assert_eq!(plan.mangle(0, vec![1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(plan.kill_at_generation, None);
    }

    #[test]
    fn faults_hit_only_their_write_index() {
        let plan = CampaignFaultPlan {
            kill_at_generation: None,
            torn_write: Some(TornWrite {
                nth_write: 1,
                keep_bytes: 2,
            }),
            bit_flip: Some(BitFlip {
                nth_write: 2,
                byte_offset: 100, // clamped to the last byte
                bit: 11,          // masked to bit 3
            }),
        };
        assert_eq!(plan.mangle(0, vec![9; 5]), vec![9; 5]);
        assert_eq!(plan.mangle(1, vec![9; 5]), vec![9, 9]);
        assert_eq!(plan.mangle(2, vec![9; 5]), vec![9, 9, 9, 9, 9 ^ 0x08]);
    }
}
