//! Particle-by-particle variational Monte Carlo driver (the drift-
//! diffusion + Metropolis structure of paper Sec. III, without the
//! branching of DMC).
//!
//! The inner loop runs the wavefunction's move protocol, which defaults
//! to the single-electron fast path
//! ([`EvalMode::PerElectron`](crate::wavefunction::EvalMode)): a V-only
//! engine call for each ratio, with the grid locate and basis weights
//! cached in the walker's move context and reused by the accept-side
//! VGL. Call
//! [`TrialWaveFunction::set_eval_mode`] before `run_vmc` to A/B against
//! the legacy all-electron propose path.
//!
//! After every sweep the driver runs the *batched* all-electron VGH
//! sweep ([`TrialWaveFunction::log_derivs`]): one `vgh_batch` engine
//! call per spin yields every electron's drift gradient and the kinetic
//! energy estimator, instead of an engine call per electron.

use crate::drivers::observables::kinetic_energy;
use crate::drivers::profile::ProfileReport;
use crate::wavefunction::TrialWaveFunction;
use einspline::Real;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// VMC run parameters.
#[derive(Clone, Copy, Debug)]
pub struct VmcConfig {
    /// Monte Carlo sweeps (each sweep proposes one move per electron).
    pub n_steps: usize,
    /// Cubic move amplitude (uniform symmetric proposal).
    pub step_size: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VmcConfig {
    fn default() -> Self {
        Self {
            n_steps: 10,
            step_size: 0.4,
            seed: 0xc0ffee,
        }
    }
}

/// Outcome of a VMC run.
#[derive(Clone, Debug)]
pub struct VmcResult {
    /// Accepted / proposed.
    pub acceptance: f64,
    /// Final `log |ΨT|`.
    pub log_psi: f64,
    /// Mean kinetic energy over the sweeps (from the batched
    /// all-electron VGH measurement after each sweep).
    pub kinetic: f64,
    /// Per-category profile of the run.
    pub profile: ProfileReport,
}

/// Run VMC sweeps on a wavefunction. |ΨT|² sampling with uniform
/// symmetric proposals (valid Metropolis).
pub fn run_vmc<T: Real<Accum = f64>>(wf: &mut TrialWaveFunction<T>, cfg: &VmcConfig) -> VmcResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n_el = wf.n_electrons();
    let lat = *wf.electrons().lattice();
    let mut accepted = 0usize;
    let mut proposed = 0usize;
    let mut kinetic_sum = 0.0;
    wf.timers.reset();

    for _ in 0..cfg.n_steps {
        for iel in 0..n_el {
            let r = wf.electrons().get(iel);
            let rnew = lat.wrap([
                r[0] + cfg.step_size * (rng.random::<f64>() - 0.5),
                r[1] + cfg.step_size * (rng.random::<f64>() - 0.5),
                r[2] + cfg.step_size * (rng.random::<f64>() - 0.5),
            ]);
            let ratio = wf.ratio(iel, rnew);
            proposed += 1;
            if ratio * ratio > rng.random::<f64>() {
                wf.accept(iel);
                accepted += 1;
            } else {
                wf.reject();
            }
        }
        // Measurement stage: one batched all-electron VGH sweep.
        kinetic_sum += kinetic_energy(&wf.log_derivs());
    }

    VmcResult {
        acceptance: accepted as f64 / proposed as f64,
        log_psi: wf.log_psi(),
        kinetic: kinetic_sum / cfg.n_steps.max(1) as f64,
        profile: wf.timers.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::profile::Category;
    use crate::jastrow::BsplineFunctor;
    use crate::particleset::random_electrons;
    use crate::spo::SpoSet;
    use crate::synthetic::CoralSystem;

    fn small_wf(seed: u64) -> TrialWaveFunction<f64> {
        let sys = CoralSystem::new(1, 1, 1, (10, 10, 12));
        let coefs = sys.orbitals::<f64>(seed);
        let spo = SpoSet::new(coefs, sys.lattice);
        let electrons = random_electrons(
            sys.lattice,
            sys.n_electrons(),
            &mut StdRng::seed_from_u64(seed),
        );
        let rc = sys.lattice.wigner_seitz_radius() * 0.9;
        TrialWaveFunction::new(
            spo,
            &sys.ions,
            electrons,
            BsplineFunctor::rpa_like(0.3, 1.0, rc, 20),
            BsplineFunctor::rpa_like(0.5, 1.2, rc, 20),
        )
    }

    #[test]
    fn vmc_runs_and_accepts_moves() {
        let mut wf = small_wf(23);
        let res = run_vmc(
            &mut wf,
            &VmcConfig {
                n_steps: 3,
                step_size: 0.3,
                seed: 7,
            },
        );
        assert!(res.acceptance > 0.05 && res.acceptance <= 1.0);
        assert!(res.log_psi.is_finite());
        assert!(res.kinetic.is_finite() && res.kinetic != 0.0);
    }

    #[test]
    fn incremental_state_survives_a_run() {
        let mut wf = small_wf(29);
        let res = run_vmc(
            &mut wf,
            &VmcConfig {
                n_steps: 2,
                step_size: 0.5,
                seed: 11,
            },
        );
        let fresh = wf.evaluate_log();
        assert!(
            (res.log_psi - fresh).abs() < 1e-6,
            "tracked {} vs fresh {fresh}",
            res.log_psi
        );
    }

    #[test]
    fn profile_covers_all_hot_categories() {
        let mut wf = small_wf(31);
        let res = run_vmc(&mut wf, &VmcConfig::default());
        for cat in [Category::Bspline, Category::Distance, Category::Jastrow] {
            assert!(res.profile.percent(cat) > 0.0, "{cat}");
        }
        let sum: f64 = Category::ALL.iter().map(|&c| res.profile.percent(c)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let r1 = run_vmc(&mut small_wf(37), &VmcConfig::default());
        let r2 = run_vmc(&mut small_wf(37), &VmcConfig::default());
        assert_eq!(r1.log_psi, r2.log_psi);
        assert_eq!(r1.acceptance, r2.acceptance);
    }
}
