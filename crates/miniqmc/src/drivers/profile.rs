//! Per-category runtime accounting — the instrument behind Tables II/III
//! (the paper used VTune/HPCToolkit; we accumulate scoped wall times).

use std::fmt;
use std::time::{Duration, Instant};

/// The kernel groups of the QMC profile (paper Table II rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// B-spline SPO evaluations (V/VGL/VGH).
    Bspline,
    /// Distance-table construction and updates.
    Distance,
    /// One- and two-body Jastrow evaluations.
    Jastrow,
    /// Determinant ratios and Sherman–Morrison updates.
    Determinant,
    /// Everything else (driver logic, RNG, accept bookkeeping).
    Other,
}

impl Category {
    /// All categories in report order.
    pub const ALL: [Category; 5] = [
        Category::Bspline,
        Category::Distance,
        Category::Jastrow,
        Category::Determinant,
        Category::Other,
    ];

    fn index(self) -> usize {
        match self {
            Category::Bspline => 0,
            Category::Distance => 1,
            Category::Jastrow => 2,
            Category::Determinant => 3,
            Category::Other => 4,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::Bspline => "B-splines",
            Category::Distance => "Distance Tables",
            Category::Jastrow => "Jastrow",
            Category::Determinant => "Determinant",
            Category::Other => "Other",
        })
    }
}

/// Accumulating scoped timers, one per category.
#[derive(Clone, Debug, Default)]
pub struct Timers {
    acc: [Duration; 5],
}

impl Timers {
    /// Create a new instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under `cat`.
    #[inline]
    pub fn time<R>(&mut self, cat: Category, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.acc[cat.index()] += t0.elapsed();
        r
    }

    /// Add an externally measured duration.
    pub fn add(&mut self, cat: Category, d: Duration) {
        self.acc[cat.index()] += d;
    }

    /// Get.
    pub fn get(&self, cat: Category) -> Duration {
        self.acc[cat.index()]
    }

    /// Total.
    pub fn total(&self) -> Duration {
        self.acc.iter().sum()
    }

    /// Reset.
    pub fn reset(&mut self) {
        self.acc = Default::default();
    }

    /// Merge another timer set (e.g. from a parallel walker).
    pub fn merge(&mut self, other: &Timers) {
        for (a, b) in self.acc.iter_mut().zip(&other.acc) {
            *a += *b;
        }
    }

    /// Report.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            timers: self.clone(),
        }
    }
}

/// A percentage view over accumulated timers.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    timers: Timers,
}

impl ProfileReport {
    /// Share of `cat` in percent of total accounted time.
    pub fn percent(&self, cat: Category) -> f64 {
        let total = self.timers.total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        100.0 * self.timers.get(cat).as_secs_f64() / total
    }

    /// Duration.
    pub fn duration(&self, cat: Category) -> Duration {
        self.timers.get(cat)
    }

    /// Total.
    pub fn total(&self) -> Duration {
        self.timers.total()
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>10} {:>7}", "category", "time", "share")?;
        for cat in Category::ALL {
            writeln!(
                f,
                "{:<16} {:>10.3?} {:>6.1}%",
                cat.to_string(),
                self.duration(cat),
                self.percent(cat)
            )?;
        }
        write!(f, "{:<16} {:>10.3?}", "total", self.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn timers_accumulate() {
        let mut t = Timers::new();
        t.time(Category::Bspline, || sleep(Duration::from_millis(2)));
        t.time(Category::Bspline, || sleep(Duration::from_millis(2)));
        t.add(Category::Jastrow, Duration::from_millis(4));
        assert!(t.get(Category::Bspline) >= Duration::from_millis(4));
        assert_eq!(t.get(Category::Jastrow), Duration::from_millis(4));
        assert_eq!(t.get(Category::Distance), Duration::ZERO);
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut t = Timers::new();
        t.add(Category::Bspline, Duration::from_millis(60));
        t.add(Category::Distance, Duration::from_millis(30));
        t.add(Category::Jastrow, Duration::from_millis(10));
        let r = t.report();
        let sum: f64 = Category::ALL.iter().map(|&c| r.percent(c)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((r.percent(Category::Bspline) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = Timers::new().report();
        assert_eq!(r.percent(Category::Bspline), 0.0);
        assert_eq!(r.total(), Duration::ZERO);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = Timers::new();
        a.add(Category::Other, Duration::from_millis(1));
        let mut b = Timers::new();
        b.add(Category::Other, Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.get(Category::Other), Duration::from_millis(3));
    }

    #[test]
    fn closure_result_passes_through() {
        let mut t = Timers::new();
        let x = t.time(Category::Determinant, || 41 + 1);
        assert_eq!(x, 42);
    }
}
