//! Observable estimators — the "measurement stage" of the paper's DMC
//! description (Sec. III): after each drift-diffusion move, kinetic and
//! potential energies are computed per walker.
//!
//! The kinetic energy uses the log-derivative identity
//! `T = −½ Σᵢ (∇²ᵢ ln|Ψ| + |∇ᵢ ln|Ψ||²)` so only the quantities the
//! wavefunction already tracks (gradients/Laplacians of `log Ψ`) are
//! needed. The potential is the bare Coulomb sum under minimum image —
//! adequate for exercising the V kernel path and the distance tables
//! (a full Ewald sum is out of scope; see DESIGN.md).

use crate::determinant::DiracDeterminant;
use crate::distance::soa::{DistanceTableAA, DistanceTableAB};
use crate::jastrow::JastrowDerivs;

/// Per-walker energy components (Hartree-like units).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LocalEnergy {
    /// Kinetic part `−½ Σ (∇² lnΨ + |∇ lnΨ|²)`.
    pub kinetic: f64,
    /// Electron–electron Coulomb (minimum image).
    pub vee: f64,
    /// Electron–ion Coulomb (charge `z_ion` per ion).
    pub vei: f64,
}

impl LocalEnergy {
    /// Total local energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.vee + self.vei
    }
}

/// Kinetic energy from per-electron log-derivatives of the full
/// wavefunction: `grad[i] = ∇ᵢ lnΨ`, `lap[i] = ∇²ᵢ lnΨ`.
pub fn kinetic_energy(derivs: &JastrowDerivs) -> f64 {
    let mut t = 0.0;
    for (g, &l) in derivs.grad.iter().zip(&derivs.lap) {
        t += l + g[0] * g[0] + g[1] * g[1] + g[2] * g[2];
    }
    -0.5 * t
}

/// Assemble the total log-derivatives of `Ψ = exp(J) D↑ D↓` for the
/// kinetic estimator: Jastrow derivatives plus determinant
/// gradients/Laplacians per electron.
///
/// `det_grad[i]`/`det_lap[i]` are `∇ᵢ log D` and `∇²ᵢ log D` of the
/// electron's own spin determinant (zero contribution from the other
/// spin).
pub fn combine_log_derivs(
    jastrow: &JastrowDerivs,
    det_grad: &[[f64; 3]],
    det_lap: &[f64],
) -> JastrowDerivs {
    assert_eq!(jastrow.grad.len(), det_grad.len());
    assert_eq!(jastrow.lap.len(), det_lap.len());
    let mut out = jastrow.clone();
    for i in 0..det_grad.len() {
        for d in 0..3 {
            out.grad[i][d] += det_grad[i][d];
        }
        out.lap[i] += det_lap[i];
    }
    out
}

/// Electron–electron Coulomb energy `Σ_{i<j} 1/r_ij` from a distance
/// table.
pub fn coulomb_ee(dist: &DistanceTableAA) -> f64 {
    let n = dist.len();
    let mut v = 0.0;
    for i in 0..n {
        let row = dist.row(i);
        for (j, &r) in row.iter().enumerate() {
            if j > i {
                v += 1.0 / r;
            }
        }
    }
    v
}

/// Electron–ion Coulomb energy `−z Σ_{eI} 1/r_eI`.
pub fn coulomb_ei(dist: &DistanceTableAB, z_ion: f64) -> f64 {
    let mut v = 0.0;
    for e in 0..dist.n_targets() {
        for &r in dist.row(e) {
            v -= z_ion / r;
        }
    }
    v
}

/// Determinant log-derivative helper: gradient and Laplacian of
/// `log det` for electron `e` given orbital derivative streams at its
/// current position.
pub fn det_log_derivs(
    det: &DiracDeterminant,
    e: usize,
    gx: &[f64],
    gy: &[f64],
    gz: &[f64],
    lap: &[f64],
) -> ([f64; 3], f64) {
    let g = det.grad_log(e, gx, gy, gz);
    let l = det.lap_log(e, lap, g);
    (g, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::particleset::{random_electrons, ParticleSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kinetic_of_plane_wave_is_half_k_squared() {
        // Ψ = exp(i k·r) has lnΨ derivatives: ∇ lnΨ = ik (we use a real
        // analogue: lnΨ = k·r ⇒ ∇ = k, ∇² = 0 ⇒ T = −½|k|² per
        // electron — the estimator just assembles the identity).
        let mut d = JastrowDerivs::zeros(2);
        d.grad[0] = [1.0, 2.0, 2.0]; // |k|² = 9
        d.grad[1] = [0.0, 0.0, 0.0];
        d.lap[1] = -4.0;
        let t = kinetic_energy(&d);
        assert!((t - (-0.5 * (9.0 - 4.0))).abs() < 1e-12);
    }

    #[test]
    fn coulomb_ee_matches_pair_sum() {
        let lat = Lattice::cubic(8.0);
        let ps = random_electrons(lat, 6, &mut StdRng::seed_from_u64(3));
        let dist = DistanceTableAA::new(&ps);
        let v = coulomb_ee(&dist);
        let mut expect = 0.0;
        for i in 0..6 {
            for j in (i + 1)..6 {
                let (_, r) = lat.min_image(ps.get(i), ps.get(j));
                expect += 1.0 / r;
            }
        }
        assert!((v - expect).abs() < 1e-10);
        assert!(v > 0.0);
    }

    #[test]
    fn coulomb_ei_is_attractive() {
        let lat = Lattice::cubic(6.0);
        let ions = ParticleSet::new("ion", lat, &[[1.0, 1.0, 1.0], [4.0, 4.0, 4.0]]);
        let els = random_electrons(lat, 4, &mut StdRng::seed_from_u64(5));
        let dist = DistanceTableAB::new(&ions, &els);
        let v = coulomb_ei(&dist, 4.0);
        assert!(v < 0.0);
    }

    #[test]
    fn combine_adds_componentwise() {
        let mut j = JastrowDerivs::zeros(2);
        j.grad[0] = [1.0, 0.0, 0.0];
        j.lap[0] = 2.0;
        let dg = vec![[0.5, 0.5, 0.0], [0.0, 0.0, 0.0]];
        let dl = vec![-1.0, 3.0];
        let c = combine_log_derivs(&j, &dg, &dl);
        assert_eq!(c.grad[0], [1.5, 0.5, 0.0]);
        assert_eq!(c.lap[0], 1.0);
        assert_eq!(c.lap[1], 3.0);
    }

    #[test]
    fn total_sums_components() {
        let e = LocalEnergy {
            kinetic: 1.5,
            vee: 0.5,
            vei: -3.0,
        };
        assert_eq!(e.total(), -1.0);
    }
}
