//! Execution drivers: per-category profiling and the VMC
//! particle-by-particle loop.

pub mod dmc;
pub mod observables;
pub mod profile;
pub mod vmc;

pub use dmc::{DmcConfig, DmcPopulation, DmcSnapshot, DmcStepStats, DmcWalker};
pub use observables::{coulomb_ee, coulomb_ei, kinetic_energy, LocalEnergy};
pub use profile::{Category, ProfileReport, Timers};
pub use vmc::{run_vmc, VmcConfig, VmcResult};
