//! Diffusion Monte Carlo driver skeleton (paper Sec. III): an ensemble
//! of walkers is propagated by (i) drift-diffusion moves, measured in a
//! (ii) measurement stage, and resampled by a (iii) branching process
//! against the trial energy.
//!
//! This driver exercises the ensemble mechanics the paper's
//! parallelization discussion rests on — a *population* of independent
//! walkers whose count fluctuates under branching and is controlled
//! towards a target (the `Nw` that the node-level parallelism
//! distributes). The per-walker "local energy" here is a configurable
//! score function so the population dynamics can be tested exactly;
//! the physical estimator from [`super::observables`] plugs in through
//! the same interface.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One walker of the DMC ensemble: a configuration tag plus its weight.
#[derive(Clone, Debug)]
pub struct DmcWalker {
    /// Opaque configuration id (indexes the caller's state storage).
    pub id: usize,
    /// Branching weight accumulated since the last resampling.
    pub weight: f64,
    /// Age: generations since the walker last branched (stuck-walker
    /// diagnostic).
    pub age: usize,
}

/// Population-control parameters.
#[derive(Clone, Copy, Debug)]
pub struct DmcConfig {
    /// Target population `Nw`.
    pub target_population: usize,
    /// Imaginary-time step (weights use `exp(-τ·(E_L − E_T))`).
    pub tau: f64,
    /// Feedback strength of the trial-energy update.
    pub feedback: f64,
    /// Hard bounds on the population as a multiple of the target.
    pub max_ratio: f64,
    /// RNG seed for stochastic rounding in branching.
    pub seed: u64,
}

impl Default for DmcConfig {
    fn default() -> Self {
        Self {
            target_population: 256,
            tau: 0.01,
            feedback: 1.0,
            max_ratio: 4.0,
            seed: 0xd31c,
        }
    }
}

/// The walker population plus trial-energy state.
#[derive(Clone, Debug)]
pub struct DmcPopulation {
    walkers: Vec<DmcWalker>,
    /// Current trial energy `E_T`.
    pub trial_energy: f64,
    cfg: DmcConfig,
    rng: StdRng,
    next_id: usize,
}

impl DmcPopulation {
    /// Start from `cfg.target_population` unit-weight walkers.
    pub fn new(cfg: DmcConfig, initial_energy: f64) -> Self {
        let walkers = (0..cfg.target_population)
            .map(|id| DmcWalker {
                id,
                weight: 1.0,
                age: 0,
            })
            .collect();
        Self {
            walkers,
            trial_energy: initial_energy,
            rng: StdRng::seed_from_u64(cfg.seed),
            next_id: cfg.target_population,
            cfg,
        }
    }

    /// Current population size.
    pub fn len(&self) -> usize {
        self.walkers.len()
    }

    /// Whether the population is extinct (an error state in practice).
    pub fn is_empty(&self) -> bool {
        self.walkers.is_empty()
    }

    /// Immutable view of the walkers.
    pub fn walkers(&self) -> &[DmcWalker] {
        &self.walkers
    }

    /// Total weight of the ensemble.
    pub fn total_weight(&self) -> f64 {
        self.walkers.iter().map(|w| w.weight).sum()
    }

    /// Weighted mean of per-walker local energies.
    pub fn mixed_estimator(&self, local_energy: impl Fn(usize) -> f64) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for w in &self.walkers {
            num += w.weight * local_energy(w.id);
            den += w.weight;
        }
        num / den
    }

    /// One DMC generation: reweight every walker by
    /// `exp(−τ·(E_L − E_T))`, branch with stochastic rounding, and move
    /// the trial energy towards population balance (paper step iii).
    ///
    /// Returns `(births, deaths)` of the branching step.
    pub fn step(&mut self, local_energy: impl Fn(usize) -> f64) -> (usize, usize) {
        // (ii) measurement + reweighting; accumulate the mixed estimator
        // that anchors the trial-energy update.
        let mut e_num = 0.0;
        let mut e_den = 0.0;
        for w in &mut self.walkers {
            let el = local_energy(w.id);
            w.weight *= (-self.cfg.tau * (el - self.trial_energy)).exp();
            e_num += w.weight * el;
            e_den += w.weight;
        }
        let e_mixed = e_num / e_den;

        // (iii) branching with stochastic rounding: a walker of weight w
        // becomes ⌊w + u⌋ copies, u ~ U[0,1).
        let mut births = 0;
        let mut deaths = 0;
        let mut next: Vec<DmcWalker> = Vec::with_capacity(self.walkers.len());
        let cap = (self.cfg.target_population as f64 * self.cfg.max_ratio) as usize;
        for w in &self.walkers {
            let copies = (w.weight + self.rng.random::<f64>()).floor() as usize;
            match copies {
                0 => deaths += 1,
                n => {
                    for c in 0..n.min(8) {
                        if next.len() >= cap {
                            break;
                        }
                        let id = if c == 0 {
                            w.id
                        } else {
                            births += 1;
                            self.next_id += 1;
                            self.next_id - 1
                        };
                        next.push(DmcWalker {
                            id,
                            weight: 1.0,
                            age: if n == 1 { w.age + 1 } else { 0 },
                        });
                    }
                }
            }
        }
        assert!(!next.is_empty(), "DMC population collapsed");
        self.walkers = next;

        // Trial-energy feedback (textbook DMC population control):
        // E_T ← E_mixed − f·ln(N/N_target).
        let ratio = self.walkers.len() as f64 / self.cfg.target_population as f64;
        self.trial_energy = e_mixed - self.cfg.feedback * ratio.ln();

        (births, deaths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pop: usize, seed: u64) -> DmcConfig {
        DmcConfig {
            target_population: pop,
            tau: 0.02,
            feedback: 0.5,
            max_ratio: 4.0,
            seed,
        }
    }

    #[test]
    fn starts_at_target_population() {
        let p = DmcPopulation::new(cfg(64, 1), -10.0);
        assert_eq!(p.len(), 64);
        assert!((p.total_weight() - 64.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_energy_at_trial_keeps_population_stable() {
        let mut p = DmcPopulation::new(cfg(128, 2), -5.0);
        for _ in 0..50 {
            p.step(|_| -5.0);
        }
        let n = p.len() as f64;
        assert!((n - 128.0).abs() < 40.0, "population drifted to {n}");
    }

    #[test]
    fn low_energy_walkers_multiply() {
        let mut p = DmcPopulation::new(cfg(64, 3), 0.0);
        // Walkers with even id have lower energy: they should dominate.
        for _ in 0..20 {
            p.step(|id| if id % 2 == 0 { -2.0 } else { 2.0 });
        }
        // Population bounded by the cap and non-extinct.
        assert!(p.len() >= 16 && p.len() <= 256);
    }

    #[test]
    fn feedback_pulls_trial_energy_to_ground_state() {
        // If every walker has E_L = E0, the stationary trial energy is
        // E0: weights stay 1 ⇒ population steady ⇒ feedback vanishes.
        let e0 = -7.5;
        let mut p = DmcPopulation::new(cfg(256, 4), 0.0);
        for _ in 0..400 {
            p.step(|_| e0);
        }
        assert!(
            (p.trial_energy - e0).abs() < 0.6,
            "E_T = {} vs E0 = {e0}",
            p.trial_energy
        );
    }

    #[test]
    fn mixed_estimator_weights_by_walker_weight() {
        let mut p = DmcPopulation::new(cfg(2, 5), 0.0);
        p.walkers[0].weight = 3.0;
        p.walkers[1].weight = 1.0;
        let e = p.mixed_estimator(|id| if id == 0 { 4.0 } else { 8.0 });
        assert!((e - 5.0).abs() < 1e-12);
    }

    #[test]
    fn population_capped_under_explosive_growth() {
        let mut p = DmcPopulation::new(cfg(32, 6), 0.0);
        for _ in 0..30 {
            p.step(|_| -100.0); // huge positive weights
        }
        assert!(p.len() <= 32 * 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = DmcPopulation::new(cfg(64, seed), -1.0);
            for _ in 0..10 {
                p.step(|id| -1.0 - (id % 3) as f64 * 0.1);
            }
            (p.len(), p.trial_energy)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
