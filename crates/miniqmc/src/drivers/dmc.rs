//! Diffusion Monte Carlo driver skeleton (paper Sec. III): an ensemble
//! of walkers is propagated by (i) drift-diffusion moves, measured in a
//! (ii) measurement stage, and resampled by a (iii) branching process
//! against the trial energy.
//!
//! This driver exercises the ensemble mechanics the paper's
//! parallelization discussion rests on — a *population* of independent
//! walkers whose count fluctuates under branching and is controlled
//! towards a target (the `Nw` that the node-level parallelism
//! distributes). The per-walker "local energy" here is a configurable
//! score function so the population dynamics can be tested exactly;
//! the physical estimator from [`super::observables`] plugs in through
//! the same interface.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One walker of the DMC ensemble: a configuration tag plus its weight.
#[derive(Clone, Debug, PartialEq)]
pub struct DmcWalker {
    /// Opaque configuration id (indexes the caller's state storage).
    pub id: usize,
    /// Branching weight accumulated since the last resampling.
    pub weight: f64,
    /// Age: generations since the walker last branched (stuck-walker
    /// diagnostic).
    pub age: usize,
}

/// Population-control parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DmcConfig {
    /// Target population `Nw`.
    pub target_population: usize,
    /// Imaginary-time step (weights use `exp(-τ·(E_L − E_T))`).
    pub tau: f64,
    /// Feedback strength of the trial-energy update.
    pub feedback: f64,
    /// Hard bounds on the population as a multiple of the target.
    pub max_ratio: f64,
    /// RNG seed for stochastic rounding in branching.
    pub seed: u64,
}

impl Default for DmcConfig {
    fn default() -> Self {
        Self {
            target_population: 256,
            tau: 0.01,
            feedback: 1.0,
            max_ratio: 4.0,
            seed: 0xd31c,
        }
    }
}

/// The walker population plus trial-energy state.
#[derive(Clone, Debug)]
pub struct DmcPopulation {
    walkers: Vec<DmcWalker>,
    /// Current trial energy `E_T`.
    pub trial_energy: f64,
    cfg: DmcConfig,
    rng: StdRng,
    next_id: usize,
}

/// A complete, restorable image of a [`DmcPopulation`]: everything
/// [`DmcPopulation::step`] reads is here, so
/// `DmcPopulation::from_snapshot(p.snapshot())` continues *bit-identically*
/// to `p` (same branching decisions, same RNG stream, same feedback).
#[derive(Clone, Debug, PartialEq)]
pub struct DmcSnapshot {
    /// Population-control parameters.
    pub cfg: DmcConfig,
    /// The walker ensemble (ids, weights, ages).
    pub walkers: Vec<DmcWalker>,
    /// Current trial energy `E_T`.
    pub trial_energy: f64,
    /// Next fresh walker id for branching births.
    pub next_id: usize,
    /// Exact xoshiro256** state of the branching RNG.
    pub rng_state: [u64; 4],
}

/// Per-generation outcome of [`DmcPopulation::step_traced`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DmcStepStats {
    /// Walkers cloned beyond their parent this generation.
    pub births: usize,
    /// Walkers whose stochastic rounding produced zero copies.
    pub deaths: usize,
    /// Weighted mean local energy after reweighting (the mixed
    /// estimator that anchors the trial-energy feedback).
    pub e_mixed: f64,
    /// Total post-reweight ensemble weight (before branching resets
    /// weights to 1).
    pub total_weight: f64,
}

impl DmcPopulation {
    /// Start from `cfg.target_population` unit-weight walkers.
    pub fn new(cfg: DmcConfig, initial_energy: f64) -> Self {
        let walkers = (0..cfg.target_population)
            .map(|id| DmcWalker {
                id,
                weight: 1.0,
                age: 0,
            })
            .collect();
        Self {
            walkers,
            trial_energy: initial_energy,
            rng: StdRng::seed_from_u64(cfg.seed),
            next_id: cfg.target_population,
            cfg,
        }
    }

    /// Current population size.
    pub fn len(&self) -> usize {
        self.walkers.len()
    }

    /// Whether the population is extinct (an error state in practice).
    pub fn is_empty(&self) -> bool {
        self.walkers.is_empty()
    }

    /// Immutable view of the walkers.
    pub fn walkers(&self) -> &[DmcWalker] {
        &self.walkers
    }

    /// Total weight of the ensemble.
    pub fn total_weight(&self) -> f64 {
        self.walkers.iter().map(|w| w.weight).sum()
    }

    /// Weighted mean of per-walker local energies.
    pub fn mixed_estimator(&self, local_energy: impl Fn(usize) -> f64) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for w in &self.walkers {
            num += w.weight * local_energy(w.id);
            den += w.weight;
        }
        num / den
    }

    /// Population-control parameters this population was built with.
    pub fn config(&self) -> &DmcConfig {
        &self.cfg
    }

    /// Capture the full resumable state (see [`DmcSnapshot`]).
    pub fn snapshot(&self) -> DmcSnapshot {
        DmcSnapshot {
            cfg: self.cfg,
            walkers: self.walkers.clone(),
            trial_energy: self.trial_energy,
            next_id: self.next_id,
            rng_state: self.rng.state(),
        }
    }

    /// Rebuild a population from a snapshot; the restored population's
    /// future evolution is bit-identical to the original's.
    pub fn from_snapshot(s: DmcSnapshot) -> Self {
        Self {
            walkers: s.walkers,
            trial_energy: s.trial_energy,
            cfg: s.cfg,
            rng: StdRng::from_state(s.rng_state),
            next_id: s.next_id,
        }
    }

    /// One DMC generation: reweight every walker by
    /// `exp(−τ·(E_L − E_T))`, branch with stochastic rounding, and move
    /// the trial energy towards population balance (paper step iii).
    ///
    /// `local_energy` is keyed by the walker's opaque `id`. Returns
    /// `(births, deaths)` of the branching step.
    pub fn step(&mut self, local_energy: impl Fn(usize) -> f64) -> (usize, usize) {
        let stats = self.step_core(|w, _| local_energy(w.id), None);
        (stats.births, stats.deaths)
    }

    /// [`DmcPopulation::step`] with the local energy keyed by *slot
    /// index* into [`DmcPopulation::walkers`], and the branching decision
    /// recorded into `parents`: after the call, `parents[i]` is the
    /// pre-branch slot index that new slot `i` was copied from. A caller
    /// holding per-walker state in slot order (the campaign driver's
    /// configuration pool) replays the same copy on its side.
    ///
    /// Consumes the RNG stream identically to `step`, so the two
    /// variants are interchangeable without perturbing determinism.
    pub fn step_traced(
        &mut self,
        local_energy: impl Fn(usize) -> f64,
        parents: &mut Vec<usize>,
    ) -> DmcStepStats {
        self.step_core(|_, slot| local_energy(slot), Some(parents))
    }

    fn step_core(
        &mut self,
        local_energy: impl Fn(&DmcWalker, usize) -> f64,
        mut parents: Option<&mut Vec<usize>>,
    ) -> DmcStepStats {
        if let Some(p) = parents.as_deref_mut() {
            p.clear();
        }

        // (ii) measurement + reweighting; accumulate the mixed estimator
        // that anchors the trial-energy update.
        let mut e_num = 0.0;
        let mut e_den = 0.0;
        for (slot, w) in self.walkers.iter_mut().enumerate() {
            let el = local_energy(w, slot);
            w.weight *= (-self.cfg.tau * (el - self.trial_energy)).exp();
            e_num += w.weight * el;
            e_den += w.weight;
        }
        // When the ensemble weight underflows to zero (or a weight
        // overflows), the ratio is 0/0 or ∞/∞; anchor the feedback on
        // the current E_T instead of poisoning the run with NaN.
        let raw_mixed = e_num / e_den;
        let e_mixed = if raw_mixed.is_finite() {
            raw_mixed
        } else {
            self.trial_energy
        };
        let total_weight = e_den;

        // (iii) branching with stochastic rounding: a walker of weight w
        // becomes ⌊w + u⌋ copies, u ~ U[0,1).
        let mut births = 0;
        let mut deaths = 0;
        let mut next: Vec<DmcWalker> = Vec::with_capacity(self.walkers.len());
        let cap = (self.cfg.target_population as f64 * self.cfg.max_ratio) as usize;
        for (slot, w) in self.walkers.iter().enumerate() {
            let copies = (w.weight + self.rng.random::<f64>()).floor() as usize;
            match copies {
                0 => deaths += 1,
                n => {
                    for c in 0..n.min(8) {
                        if next.len() >= cap {
                            break;
                        }
                        let id = if c == 0 {
                            w.id
                        } else {
                            births += 1;
                            self.next_id += 1;
                            self.next_id - 1
                        };
                        next.push(DmcWalker {
                            id,
                            weight: 1.0,
                            age: if n == 1 { w.age + 1 } else { 0 },
                        });
                        if let Some(p) = parents.as_deref_mut() {
                            p.push(slot);
                        }
                    }
                }
            }
        }

        // Anti-extinction fallback: if stochastic rounding killed every
        // walker (all weights underflowed towards zero), resurrect the
        // heaviest post-reweight walker rather than aborting the run.
        // Deterministic (no RNG draw), so checkpoint/resume replays it.
        if next.is_empty() {
            let (slot, survivor) = self
                .walkers
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.weight.total_cmp(&b.weight))
                .expect("stepping an empty population");
            deaths -= 1;
            next.push(DmcWalker {
                id: survivor.id,
                weight: 1.0,
                age: survivor.age + 1,
            });
            if let Some(p) = parents {
                p.push(slot);
            }
        }
        self.walkers = next;

        // Trial-energy feedback (textbook DMC population control):
        // E_T ← E_mixed − f·ln(N/N_target).
        let ratio = self.walkers.len() as f64 / self.cfg.target_population as f64;
        self.trial_energy = e_mixed - self.cfg.feedback * ratio.ln();

        DmcStepStats {
            births,
            deaths,
            e_mixed,
            total_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pop: usize, seed: u64) -> DmcConfig {
        DmcConfig {
            target_population: pop,
            tau: 0.02,
            feedback: 0.5,
            max_ratio: 4.0,
            seed,
        }
    }

    #[test]
    fn starts_at_target_population() {
        let p = DmcPopulation::new(cfg(64, 1), -10.0);
        assert_eq!(p.len(), 64);
        assert!((p.total_weight() - 64.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_energy_at_trial_keeps_population_stable() {
        let mut p = DmcPopulation::new(cfg(128, 2), -5.0);
        for _ in 0..50 {
            p.step(|_| -5.0);
        }
        let n = p.len() as f64;
        assert!((n - 128.0).abs() < 40.0, "population drifted to {n}");
    }

    #[test]
    fn low_energy_walkers_multiply() {
        let mut p = DmcPopulation::new(cfg(64, 3), 0.0);
        // Walkers with even id have lower energy: they should dominate.
        for _ in 0..20 {
            p.step(|id| if id % 2 == 0 { -2.0 } else { 2.0 });
        }
        // Population bounded by the cap and non-extinct.
        assert!(p.len() >= 16 && p.len() <= 256);
    }

    #[test]
    fn feedback_pulls_trial_energy_to_ground_state() {
        // If every walker has E_L = E0, the stationary trial energy is
        // E0: weights stay 1 ⇒ population steady ⇒ feedback vanishes.
        let e0 = -7.5;
        let mut p = DmcPopulation::new(cfg(256, 4), 0.0);
        for _ in 0..400 {
            p.step(|_| e0);
        }
        assert!(
            (p.trial_energy - e0).abs() < 0.6,
            "E_T = {} vs E0 = {e0}",
            p.trial_energy
        );
    }

    #[test]
    fn mixed_estimator_weights_by_walker_weight() {
        let mut p = DmcPopulation::new(cfg(2, 5), 0.0);
        p.walkers[0].weight = 3.0;
        p.walkers[1].weight = 1.0;
        let e = p.mixed_estimator(|id| if id == 0 { 4.0 } else { 8.0 });
        assert!((e - 5.0).abs() < 1e-12);
    }

    #[test]
    fn population_capped_under_explosive_growth() {
        let mut p = DmcPopulation::new(cfg(32, 6), 0.0);
        for _ in 0..30 {
            p.step(|_| -100.0); // huge positive weights
        }
        assert!(p.len() <= 32 * 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = DmcPopulation::new(cfg(64, seed), -1.0);
            for _ in 0..10 {
                p.step(|id| -1.0 - (id % 3) as f64 * 0.1);
            }
            (p.len(), p.trial_energy)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn weight_underflow_keeps_one_survivor() {
        // E_L far above E_T drives every weight to ~exp(-large) ≈ 0, so
        // stochastic rounding kills all walkers. The anti-extinction
        // fallback must resurrect exactly one (the heaviest) instead of
        // panicking, and keep the run steppable afterwards.
        let mut p = DmcPopulation::new(cfg(16, 11), 0.0);
        let (_, deaths) = p.step(|_| 1.0e6);
        assert_eq!(p.len(), 1, "exactly one survivor after total underflow");
        assert_eq!(deaths, 15, "the resurrected walker is not a death");
        assert!((p.total_weight() - 1.0).abs() < 1e-12);
        // Still alive and controllable: with E_L modestly below the
        // post-bottleneck E_T (≈ 1e6 after the feedback update), the
        // population regrows towards the target.
        for _ in 0..40 {
            let recover = p.trial_energy - 40.0;
            p.step(|_| recover);
            assert!(!p.is_empty());
        }
        assert!(p.len() > 1, "population recovers after the bottleneck");
    }

    #[test]
    fn branching_explosion_saturates_cap_in_one_step() {
        // E_L far below E_T gives every walker weight ≫ 8: the per-walker
        // copy clamp (8) and the global cap (target × max_ratio) must
        // bound the very first generation.
        let mut p = DmcPopulation::new(cfg(32, 12), 0.0);
        let stats_parents = {
            let mut parents = Vec::new();
            let stats = p.step_traced(|_| -1.0e3, &mut parents);
            (stats, parents)
        };
        let cap = 32 * 4;
        assert_eq!(p.len(), cap, "one explosive step saturates the cap");
        assert_eq!(stats_parents.1.len(), cap);
        // Every parent index refers to a pre-branch slot.
        assert!(stats_parents.1.iter().all(|&s| s < 32));
        assert_eq!(stats_parents.0.deaths, 0);
        // Each parent contributes one non-birth first copy; everything
        // else pushed is a birth.
        let distinct_parents = stats_parents.1[cap - 1] + 1;
        assert_eq!(stats_parents.0.births, cap - distinct_parents);
    }

    #[test]
    fn single_walker_population_survives_and_feeds_back() {
        let mut p = DmcPopulation::new(cfg(1, 13), -2.0);
        assert_eq!(p.len(), 1);
        for _ in 0..200 {
            p.step(|_| -2.0);
            assert!(!p.is_empty(), "singleton population must never go extinct");
            assert!(p.len() <= 4, "cap = target × max_ratio = 4");
        }
        assert!(
            (p.trial_energy - -2.0).abs() < 1.5,
            "E_T tracks E_L for a singleton: {}",
            p.trial_energy
        );
    }

    #[test]
    fn traced_step_consumes_rng_identically_to_step() {
        // step / step_traced must be interchangeable mid-run without
        // perturbing the stream: same branching, same E_T trajectory.
        let energy = |id: usize| -1.0 - (id % 5) as f64 * 0.3;
        let mut a = DmcPopulation::new(cfg(48, 14), -1.0);
        let mut b = DmcPopulation::new(cfg(48, 14), -1.0);
        let mut parents = Vec::new();
        for g in 0..12 {
            a.step(energy);
            if g % 2 == 0 {
                // Slot-keyed closure: look the id up through the slot.
                let ids: Vec<usize> = b.walkers().iter().map(|w| w.id).collect();
                b.step_traced(|slot| energy(ids[slot]), &mut parents);
                assert_eq!(parents.len(), b.len());
            } else {
                b.step(energy);
            }
        }
        assert_eq!(a.walkers(), b.walkers());
        assert_eq!(a.trial_energy.to_bits(), b.trial_energy.to_bits());
        assert_eq!(a.snapshot().rng_state, b.snapshot().rng_state);
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let energy = |id: usize| -3.0 + (id % 7) as f64 * 0.2;
        let mut p = DmcPopulation::new(cfg(64, 15), -3.0);
        for _ in 0..5 {
            p.step(energy);
        }
        let snap = p.snapshot();
        // Golden continuation vs restored continuation.
        let mut golden = p.clone();
        let mut restored = DmcPopulation::from_snapshot(snap.clone());
        for _ in 0..10 {
            golden.step(energy);
            restored.step(energy);
        }
        assert_eq!(golden.walkers(), restored.walkers());
        assert_eq!(
            golden.trial_energy.to_bits(),
            restored.trial_energy.to_bits()
        );
        assert_eq!(golden.snapshot(), restored.snapshot());
        // Snapshot round-trips exactly.
        assert_eq!(DmcPopulation::from_snapshot(snap.clone()).snapshot(), snap);
    }
}
