//! Two-body (electron–electron) Jastrow: `log J2 = −Σ_{i<j} u(r_ij)`.
//!
//! Keeps QMCPACK-style per-electron accumulators `Uat[i] = Σ_{j≠i}
//! u(r_ij)` so a single-particle move ratio is O(N) and acceptance is
//! O(N). The hot loops consume contiguous distance-table rows (the SoA
//! layout payoff).

use super::JastrowDerivs;
use crate::distance::soa::DistanceTableAA;
use crate::jastrow::BsplineFunctor;

/// Two-body Jastrow term.
#[derive(Clone, Debug)]
pub struct TwoBodyJastrow {
    u: BsplineFunctor,
    n: usize,
    /// Per-electron pair sums `Uat[i] = Σ_{j≠i} u(r_ij)`.
    uat: Vec<f64>,
    /// Scratch: `u(r)` of the proposed row.
    u_new: Vec<f64>,
    /// Scratch: `u(r)` of the current row of the moving electron.
    u_old: Vec<f64>,
    iel: usize,
}

impl TwoBodyJastrow {
    /// Create a new instance.
    pub fn new(u: BsplineFunctor, n_electrons: usize) -> Self {
        Self {
            u,
            n: n_electrons,
            uat: vec![0.0; n_electrons],
            u_new: vec![0.0; n_electrons],
            u_old: vec![0.0; n_electrons],
            iel: usize::MAX,
        }
    }

    #[inline]
    /// Functor.
    pub fn functor(&self) -> &BsplineFunctor {
        &self.u
    }

    /// Full evaluation: returns `log J2` and fills per-electron
    /// gradients/Laplacians of `log J2`. Also (re)builds the `Uat`
    /// accumulators.
    pub fn evaluate_log(&mut self, dist: &DistanceTableAA, derivs: &mut JastrowDerivs) -> f64 {
        assert_eq!(dist.len(), self.n);
        let n = self.n;
        let mut log_sum = 0.0;
        for i in 0..n {
            let row = dist.row(i);
            let (dx, dy, dz) = dist.disp_rows(i);
            let mut usum = 0.0;
            let mut g = [0.0f64; 3];
            let mut lap = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let r = row[j];
                let (u, du, d2u) = self.u.vgl(r);
                usum += u;
                if r > 0.0 {
                    let du_r = du / r;
                    // ∇ᵢ log J2 = +Σ u′(r)·(r_j − r_i)/r  (log J2 = −Σu,
                    // ∂r/∂rᵢ = −disp/r).
                    g[0] += du_r * dx[j];
                    g[1] += du_r * dy[j];
                    g[2] += du_r * dz[j];
                    lap -= d2u + 2.0 * du_r;
                }
            }
            self.uat[i] = usum;
            derivs.grad[i] = g;
            derivs.lap[i] = lap;
            log_sum += usum;
        }
        // Each pair counted twice in Σᵢ Uat[i].
        -0.5 * log_sum
    }

    /// Move ratio `J2(new)/J2(old)` for electron `iel` whose proposed
    /// distances are in the table's scratch row (after
    /// `DistanceTableAA::propose`).
    pub fn ratio(&mut self, dist: &DistanceTableAA, iel: usize) -> f64 {
        let temp = dist.temp_row();
        let old = dist.row(iel);
        let mut du_sum = 0.0;
        for j in 0..self.n {
            if j == iel {
                continue;
            }
            let un = self.u.value(temp[j]);
            let uo = self.u.value(old[j]);
            self.u_new[j] = un;
            self.u_old[j] = uo;
            du_sum += un - uo;
        }
        self.iel = iel;
        (-du_sum).exp()
    }

    /// Commit the proposed move (call after the distance table accepted
    /// it): repair the `Uat` accumulators in O(N).
    pub fn accept(&mut self, iel: usize) {
        assert_eq!(iel, self.iel, "accept must follow ratio for the same electron");
        let mut unew_sum = 0.0;
        for j in 0..self.n {
            if j == iel {
                continue;
            }
            self.uat[j] += self.u_new[j] - self.u_old[j];
            unew_sum += self.u_new[j];
        }
        self.uat[iel] = unew_sum;
        self.iel = usize::MAX;
    }

    /// `log J2` recovered from the accumulators.
    pub fn log_value(&self) -> f64 {
        -0.5 * self.uat.iter().sum::<f64>()
    }
}


/// Spin-dependent two-body Jastrow: distinct radial functions for
/// same-spin and opposite-spin pairs (`u↑↑ = u↓↓`, `u↑↓`), the standard
/// QMCPACK parameterization (same-spin correlation is weaker because
/// exchange already keeps like-spin electrons apart).
///
/// Electrons `0..n_up` are spin-up, the rest spin-down.
#[derive(Clone, Debug)]
pub struct SpinTwoBodyJastrow {
    u_same: BsplineFunctor,
    u_opp: BsplineFunctor,
    n: usize,
    n_up: usize,
    uat: Vec<f64>,
    u_new: Vec<f64>,
    u_old: Vec<f64>,
    iel: usize,
}

impl SpinTwoBodyJastrow {
    /// Create with the same/opposite-spin functors and the spin split.
    pub fn new(
        u_same: BsplineFunctor,
        u_opp: BsplineFunctor,
        n_electrons: usize,
        n_up: usize,
    ) -> Self {
        assert!(n_up <= n_electrons, "spin-up count exceeds electrons");
        Self {
            u_same,
            u_opp,
            n: n_electrons,
            n_up,
            uat: vec![0.0; n_electrons],
            u_new: vec![0.0; n_electrons],
            u_old: vec![0.0; n_electrons],
            iel: usize::MAX,
        }
    }

    #[inline]
    fn same_spin(&self, i: usize, j: usize) -> bool {
        (i < self.n_up) == (j < self.n_up)
    }

    #[inline]
    fn functor(&self, i: usize, j: usize) -> &BsplineFunctor {
        if self.same_spin(i, j) {
            &self.u_same
        } else {
            &self.u_opp
        }
    }

    /// Full evaluation: `log J2` with per-electron derivative
    /// accumulation (added into `derivs`).
    pub fn evaluate_log(
        &mut self,
        dist: &DistanceTableAA,
        derivs: &mut JastrowDerivs,
    ) -> f64 {
        assert_eq!(dist.len(), self.n);
        let n = self.n;
        let mut log_sum = 0.0;
        for i in 0..n {
            let row = dist.row(i);
            let (dx, dy, dz) = dist.disp_rows(i);
            let mut usum = 0.0;
            let mut g = [0.0f64; 3];
            let mut lap = 0.0;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let r = row[j];
                let (u, du, d2u) = self.functor(i, j).vgl(r);
                usum += u;
                if r > 0.0 {
                    let du_r = du / r;
                    g[0] += du_r * dx[j];
                    g[1] += du_r * dy[j];
                    g[2] += du_r * dz[j];
                    lap -= d2u + 2.0 * du_r;
                }
            }
            self.uat[i] = usum;
            derivs.grad[i][0] += g[0];
            derivs.grad[i][1] += g[1];
            derivs.grad[i][2] += g[2];
            derivs.lap[i] += lap;
            log_sum += usum;
        }
        -0.5 * log_sum
    }

    /// Move ratio for electron `iel` (proposal rows in the distance
    /// table scratch).
    pub fn ratio(&mut self, dist: &DistanceTableAA, iel: usize) -> f64 {
        let temp = dist.temp_row();
        let old = dist.row(iel);
        let mut du_sum = 0.0;
        for j in 0..self.n {
            if j == iel {
                continue;
            }
            let f = self.functor(iel, j);
            let un = f.value(temp[j]);
            let uo = f.value(old[j]);
            self.u_new[j] = un;
            self.u_old[j] = uo;
            du_sum += un - uo;
        }
        self.iel = iel;
        (-du_sum).exp()
    }

    /// Commit the proposed move (O(N) accumulator repair).
    pub fn accept(&mut self, iel: usize) {
        assert_eq!(iel, self.iel, "accept must follow ratio for the same electron");
        let mut unew_sum = 0.0;
        for j in 0..self.n {
            if j == iel {
                continue;
            }
            self.uat[j] += self.u_new[j] - self.u_old[j];
            unew_sum += self.u_new[j];
        }
        self.uat[iel] = unew_sum;
        self.iel = usize::MAX;
    }

    /// `log J2` from the accumulators.
    pub fn log_value(&self) -> f64 {
        -0.5 * self.uat.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Lattice;
    use crate::particleset::{random_electrons, ParticleSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, seed: u64) -> (ParticleSet, DistanceTableAA, TwoBodyJastrow) {
        let lat = Lattice::cubic(6.0);
        let ps = random_electrons(lat, n, &mut StdRng::seed_from_u64(seed));
        let dist = DistanceTableAA::new(&ps);
        let u = BsplineFunctor::rpa_like(0.4, 1.2, 2.5, 40);
        let j2 = TwoBodyJastrow::new(u, n);
        (ps, dist, j2)
    }

    fn brute_force_log(ps: &ParticleSet, u: &BsplineFunctor) -> f64 {
        let n = ps.len();
        let lat = ps.lattice();
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let (_, r) = lat.min_image(ps.get(i), ps.get(j));
                s += u.value(r);
            }
        }
        -s
    }

    #[test]
    fn log_matches_brute_force_pair_sum() {
        let (ps, dist, mut j2) = setup(10, 3);
        let mut derivs = JastrowDerivs::zeros(10);
        let log = j2.evaluate_log(&dist, &mut derivs);
        let expect = brute_force_log(&ps, j2.functor());
        assert!((log - expect).abs() < 1e-10, "{log} vs {expect}");
        assert!((j2.log_value() - expect).abs() < 1e-10);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (mut ps, _, mut j2) = setup(8, 7);
        let mut derivs = JastrowDerivs::zeros(8);
        let dist = DistanceTableAA::new(&ps);
        j2.evaluate_log(&dist, &mut derivs);
        let h = 1e-6;
        let iel = 2;
        for d in 0..3 {
            let r0 = ps.get(iel);
            let mut rp = r0;
            rp[d] += h;
            ps.set(iel, rp);
            let fp = brute_force_log(&ps, j2.functor());
            let mut rm = r0;
            rm[d] -= h;
            ps.set(iel, rm);
            let fm = brute_force_log(&ps, j2.functor());
            ps.set(iel, r0);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (derivs.grad[iel][d] - fd).abs() < 1e-6,
                "d={d}: {} vs {fd}",
                derivs.grad[iel][d]
            );
        }
    }

    #[test]
    fn laplacian_matches_finite_difference() {
        let (mut ps, _, mut j2) = setup(6, 11);
        let mut derivs = JastrowDerivs::zeros(6);
        let dist = DistanceTableAA::new(&ps);
        j2.evaluate_log(&dist, &mut derivs);
        let h = 1e-4;
        let iel = 1;
        let f0 = brute_force_log(&ps, j2.functor());
        let mut lap_fd = 0.0;
        let r0 = ps.get(iel);
        for d in 0..3 {
            let mut rp = r0;
            rp[d] += h;
            ps.set(iel, rp);
            let fp = brute_force_log(&ps, j2.functor());
            let mut rm = r0;
            rm[d] -= h;
            ps.set(iel, rm);
            let fm = brute_force_log(&ps, j2.functor());
            ps.set(iel, r0);
            lap_fd += (fp - 2.0 * f0 + fm) / (h * h);
        }
        assert!(
            (derivs.lap[iel] - lap_fd).abs() < 1e-3,
            "{} vs {lap_fd}",
            derivs.lap[iel]
        );
    }

    #[test]
    fn ratio_matches_log_difference() {
        let (mut ps, mut dist, mut j2) = setup(9, 13);
        let mut derivs = JastrowDerivs::zeros(9);
        j2.evaluate_log(&dist, &mut derivs);
        let log_old = brute_force_log(&ps, j2.functor());
        let iel = 4;
        let rnew = [2.9, 0.4, 5.2];
        dist.propose(&ps, iel, rnew);
        let ratio = j2.ratio(&dist, iel);
        ps.set(iel, rnew);
        let log_new = brute_force_log(&ps, j2.functor());
        assert!(
            (ratio - (log_new - log_old).exp()).abs() < 1e-10,
            "{ratio} vs {}",
            (log_new - log_old).exp()
        );
    }


    #[test]
    fn spin_j2_with_equal_functors_matches_spinless() {
        let (ps, dist, mut j2) = setup(8, 41);
        let u = j2.functor().clone();
        let mut spin = SpinTwoBodyJastrow::new(u.clone(), u, 8, 4);
        let mut d1 = JastrowDerivs::zeros(8);
        let mut d2 = JastrowDerivs::zeros(8);
        let a = j2.evaluate_log(&dist, &mut d1);
        let b = spin.evaluate_log(&dist, &mut d2);
        assert!((a - b).abs() < 1e-12);
        for i in 0..8 {
            assert!((d1.lap[i] - d2.lap[i]).abs() < 1e-12);
        }
        let _ = ps;
    }

    #[test]
    fn spin_j2_ratio_and_accept_consistent() {
        let lat = Lattice::cubic(6.0);
        let mut ps = random_electrons(lat, 8, &mut StdRng::seed_from_u64(43));
        let mut dist = DistanceTableAA::new(&ps);
        let u_same = BsplineFunctor::rpa_like(0.25, 1.4, 2.5, 32);
        let u_opp = BsplineFunctor::rpa_like(0.5, 1.0, 2.5, 32);
        let mut spin = SpinTwoBodyJastrow::new(u_same, u_opp, 8, 4);
        let mut derivs = JastrowDerivs::zeros(8);
        spin.evaluate_log(&dist, &mut derivs);
        let mut rng = StdRng::seed_from_u64(44);
        for step in 0..16 {
            let iel = step % 8;
            let rnew = [
                6.0 * rng.random::<f64>(),
                6.0 * rng.random::<f64>(),
                6.0 * rng.random::<f64>(),
            ];
            dist.propose(&ps, iel, rnew);
            let r = spin.ratio(&dist, iel);
            assert!(r.is_finite() && r > 0.0);
            dist.accept(iel);
            spin.accept(iel);
            ps.set(iel, rnew);
        }
        // Accumulators consistent with a fresh evaluation.
        let tracked = spin.log_value();
        let mut fresh_derivs = JastrowDerivs::zeros(8);
        let fresh = spin.evaluate_log(&dist, &mut fresh_derivs);
        assert!((tracked - fresh).abs() < 1e-9, "{tracked} vs {fresh}");
    }

    #[test]
    fn opposite_spin_pairs_use_the_opp_functor() {
        // With u_same = 0, only cross-spin pairs contribute.
        let lat = Lattice::cubic(6.0);
        let ps = random_electrons(lat, 4, &mut StdRng::seed_from_u64(45));
        let dist = DistanceTableAA::new(&ps);
        let zero = BsplineFunctor::fit(|_| 0.0, 2.5, 8);
        let u_opp = BsplineFunctor::rpa_like(0.5, 1.0, 2.5, 32);
        let mut spin = SpinTwoBodyJastrow::new(zero, u_opp.clone(), 4, 2);
        let mut d = JastrowDerivs::zeros(4);
        let log = spin.evaluate_log(&dist, &mut d);
        let mut expect = 0.0;
        for i in 0..2 {
            for j in 2..4 {
                let (_, r) = lat.min_image(ps.get(i), ps.get(j));
                expect -= u_opp.value(r);
            }
        }
        assert!((log - expect).abs() < 1e-10, "{log} vs {expect}");
    }

    #[test]
    fn accept_keeps_accumulators_consistent() {
        let (mut ps, mut dist, mut j2) = setup(7, 17);
        let mut derivs = JastrowDerivs::zeros(7);
        j2.evaluate_log(&dist, &mut derivs);
        let mut rng = StdRng::seed_from_u64(99);
        for step in 0..20 {
            let iel = step % 7;
            let rnew = [
                6.0 * rng.random::<f64>(),
                6.0 * rng.random::<f64>(),
                6.0 * rng.random::<f64>(),
            ];
            dist.propose(&ps, iel, rnew);
            let _ = j2.ratio(&dist, iel);
            dist.accept(iel);
            j2.accept(iel);
            ps.set(iel, rnew);
        }
        let expect = brute_force_log(&ps, j2.functor());
        assert!(
            (j2.log_value() - expect).abs() < 1e-9,
            "{} vs {expect}",
            j2.log_value()
        );
    }
}
