//! The radial correlation function `u(r)`: a clamped 1D cubic B-spline on
//! `[0, r_cut]` that vanishes smoothly at the cutoff (value and slope
//! zero), matching QMCPACK's `BsplineFunctor` construction.

use einspline::{Grid1, Spline1};

/// A cutoff radial function represented by a 1D cubic B-spline.
#[derive(Clone, Debug)]
pub struct BsplineFunctor {
    spline: Spline1<f64>,
    rcut: f64,
}

impl BsplineFunctor {
    /// Fit `f` on `npts+1` uniform points of `[0, rcut]`, clamping the
    /// outer boundary to `u(rcut) = f(rcut)` with zero slope and the
    /// inner boundary to the sampled slope of `f` at 0.
    pub fn fit<F: Fn(f64) -> f64>(f: F, rcut: f64, npts: usize) -> Self {
        assert!(rcut > 0.0 && npts >= 4, "need rcut > 0 and ≥ 4 intervals");
        let grid = Grid1::natural(0.0, rcut, npts);
        let data: Vec<f64> = (0..=npts).map(|i| f(grid.point(i))).collect();
        let h = rcut / npts as f64 * 1e-3;
        let s0 = (f(h) - f(0.0)) / h;
        let spline = Spline1::interpolate_clamped(grid, &data, s0, 0.0);
        Self { spline, rcut }
    }

    /// The electron–electron RPA-like default used by the examples:
    /// `u(r) = a·exp(−r/f)·(1 − r/r_cut)²` — smooth, monotonically
    /// decaying, exactly zero value/slope at the cutoff.
    pub fn rpa_like(a: f64, f: f64, rcut: f64, npts: usize) -> Self {
        Self::fit(
            move |r| {
                let t = 1.0 - r / rcut;
                a * (-r / f).exp() * t * t
            },
            rcut,
            npts,
        )
    }

    #[inline]
    /// Cutoff.
    pub fn cutoff(&self) -> f64 {
        self.rcut
    }

    /// `u(r)`; zero beyond the cutoff.
    #[inline]
    pub fn value(&self, r: f64) -> f64 {
        if r >= self.rcut {
            0.0
        } else {
            self.spline.value(r)
        }
    }

    /// `(u, u′, u″)` at `r`; zeros beyond the cutoff.
    #[inline]
    pub fn vgl(&self, r: f64) -> (f64, f64, f64) {
        if r >= self.rcut {
            (0.0, 0.0, 0.0)
        } else {
            self.spline.vgl(r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn functor() -> BsplineFunctor {
        BsplineFunctor::rpa_like(0.5, 1.0, 3.0, 64)
    }

    #[test]
    fn interpolates_the_analytic_form() {
        let f = functor();
        for k in 0..60 {
            let r = 3.0 * k as f64 / 60.0;
            let t = 1.0 - r / 3.0;
            let expect = 0.5 * (-r).exp() * t * t;
            assert!((f.value(r) - expect).abs() < 1e-5, "r={r}");
        }
    }

    #[test]
    fn vanishes_smoothly_at_cutoff() {
        let f = functor();
        let (u, du, _) = f.vgl(3.0 - 1e-9);
        assert!(u.abs() < 1e-7);
        assert!(du.abs() < 1e-4);
        assert_eq!(f.value(3.0), 0.0);
        assert_eq!(f.vgl(5.0), (0.0, 0.0, 0.0));
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let f = functor();
        let h = 1e-6;
        for k in 1..25 {
            let r = 2.8 * k as f64 / 25.0;
            let (_, du, d2u) = f.vgl(r);
            let fd1 = (f.value(r + h) - f.value(r - h)) / (2.0 * h);
            let fd2 = (f.value(r + h) - 2.0 * f.value(r) + f.value(r - h)) / (h * h);
            assert!((du - fd1).abs() < 1e-6, "r={r}");
            assert!((d2u - fd2).abs() < 1e-3, "r={r}");
        }
    }

    #[test]
    fn monotone_decay_for_rpa_like() {
        let f = functor();
        let mut prev = f.value(0.0);
        for k in 1..30 {
            let cur = f.value(3.0 * k as f64 / 30.0);
            assert!(cur <= prev + 1e-9, "k={k}");
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "rcut > 0")]
    fn bad_cutoff_rejected() {
        let _ = BsplineFunctor::fit(|_| 0.0, 0.0, 8);
    }
}
