//! Jastrow correlation factors — the third kernel group of the QMC
//! profile (Tables II/III: 11–22 % of runtime).
//!
//! `ΨT = exp(J) D↑ D↓` with `J = J1 + J2`:
//!
//! * [`functor`] — the radial correlation function `u(r)`: a 1D cubic
//!   B-spline with a cutoff (QMCPACK's `BsplineFunctor`);
//! * [`j1`] — one-body (electron–ion) term `J1 = −Σ_{eI} u(r_eI)`;
//! * [`j2`] — two-body (electron–electron) term `J2 = −Σ_{i<j} u(r_ij)`.
//!
//! Each term provides the VMC particle-by-particle contract: full
//! `evaluate_log` with per-electron gradients/Laplacians, an O(N) move
//! `ratio`, and an `accept` that keeps per-particle accumulators
//! consistent.

pub mod functor;
pub mod j1;
pub mod j2;

pub use functor::BsplineFunctor;
pub use j1::OneBodyJastrow;
pub use j2::{SpinTwoBodyJastrow, TwoBodyJastrow};

/// Per-electron derivative accumulators of a Jastrow term.
#[derive(Clone, Debug, Default)]
pub struct JastrowDerivs {
    /// `∇ᵢ log J` per electron.
    pub grad: Vec<[f64; 3]>,
    /// `∇²ᵢ log J` per electron.
    pub lap: Vec<f64>,
}

impl JastrowDerivs {
    /// Zeros.
    pub fn zeros(n: usize) -> Self {
        Self {
            grad: vec![[0.0; 3]; n],
            lap: vec![0.0; n],
        }
    }
}
