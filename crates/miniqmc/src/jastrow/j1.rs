//! One-body (electron–ion) Jastrow: `log J1 = −Σ_e Σ_I u(r_eI)`.

use super::JastrowDerivs;
use crate::distance::soa::DistanceTableAB;
use crate::jastrow::BsplineFunctor;

/// One-body Jastrow term (single ion species).
#[derive(Clone, Debug)]
pub struct OneBodyJastrow {
    u: BsplineFunctor,
    n_el: usize,
    /// Per-electron ion sums `Uat[e] = Σ_I u(r_eI)`.
    uat: Vec<f64>,
    u_new: f64,
    iel: usize,
}

impl OneBodyJastrow {
    /// Create a new instance.
    pub fn new(u: BsplineFunctor, n_electrons: usize) -> Self {
        Self {
            u,
            n_el: n_electrons,
            uat: vec![0.0; n_electrons],
            u_new: 0.0,
            iel: usize::MAX,
        }
    }

    #[inline]
    /// Functor.
    pub fn functor(&self) -> &BsplineFunctor {
        &self.u
    }

    /// Full evaluation: `log J1` plus per-electron derivative
    /// accumulation (added into `derivs`, so call after zeroing or after
    /// J2 to accumulate the total Jastrow derivatives).
    pub fn evaluate_log(&mut self, dist: &DistanceTableAB, derivs: &mut JastrowDerivs) -> f64 {
        assert_eq!(dist.n_targets(), self.n_el);
        let n_ion = dist.n_sources();
        let mut log_sum = 0.0;
        for e in 0..self.n_el {
            let row = dist.row(e);
            let (dx, dy, dz) = dist.disp_rows(e);
            let mut usum = 0.0;
            let mut g = [0.0f64; 3];
            let mut lap = 0.0;
            for i in 0..n_ion {
                let r = row[i];
                let (u, du, d2u) = self.u.vgl(r);
                usum += u;
                if r > 0.0 {
                    let du_r = du / r;
                    // displacement = ion − electron; ∂r/∂r_e = −disp/r.
                    g[0] += du_r * dx[i];
                    g[1] += du_r * dy[i];
                    g[2] += du_r * dz[i];
                    lap -= d2u + 2.0 * du_r;
                }
            }
            self.uat[e] = usum;
            derivs.grad[e][0] += g[0];
            derivs.grad[e][1] += g[1];
            derivs.grad[e][2] += g[2];
            derivs.lap[e] += lap;
            log_sum += usum;
        }
        -log_sum
    }

    /// Move ratio for electron `iel` with proposed ion distances in the
    /// table's scratch row.
    pub fn ratio(&mut self, dist: &DistanceTableAB, iel: usize) -> f64 {
        let mut unew = 0.0;
        for &r in dist.temp_row() {
            unew += self.u.value(r);
        }
        self.u_new = unew;
        self.iel = iel;
        (self.uat[iel] - unew).exp()
    }

    /// Commit the move.
    pub fn accept(&mut self, iel: usize) {
        assert_eq!(iel, self.iel, "accept must follow ratio for the same electron");
        self.uat[iel] = self.u_new;
        self.iel = usize::MAX;
    }

    /// `log J1` from the accumulators.
    pub fn log_value(&self) -> f64 {
        -self.uat.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{graphite_supercell, Lattice};
    use crate::particleset::{random_electrons, ParticleSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(
        n_el: usize,
        seed: u64,
    ) -> (ParticleSet, ParticleSet, DistanceTableAB, OneBodyJastrow) {
        let (lat, ion_pos) = graphite_supercell(2, 2, 1);
        let ions = ParticleSet::new("ion", lat, &ion_pos);
        let els = random_electrons(lat, n_el, &mut StdRng::seed_from_u64(seed));
        let dist = DistanceTableAB::new(&ions, &els);
        let u = BsplineFunctor::rpa_like(0.3, 0.9, 2.2, 40);
        let j1 = OneBodyJastrow::new(u, n_el);
        (ions, els, dist, j1)
    }

    fn brute_force_log(
        ions: &ParticleSet,
        els: &ParticleSet,
        u: &BsplineFunctor,
    ) -> f64 {
        let lat = els.lattice();
        let mut s = 0.0;
        for e in 0..els.len() {
            for i in 0..ions.len() {
                let (_, r) = lat.min_image(els.get(e), ions.get(i));
                s += u.value(r);
            }
        }
        -s
    }

    #[test]
    fn log_matches_brute_force() {
        let (ions, els, dist, mut j1) = setup(8, 3);
        let mut derivs = JastrowDerivs::zeros(8);
        let log = j1.evaluate_log(&dist, &mut derivs);
        let expect = brute_force_log(&ions, &els, j1.functor());
        assert!((log - expect).abs() < 1e-10);
        assert!((j1.log_value() - expect).abs() < 1e-10);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (ions, mut els, dist, mut j1) = setup(6, 5);
        let mut derivs = JastrowDerivs::zeros(6);
        j1.evaluate_log(&dist, &mut derivs);
        let h = 1e-6;
        let iel = 3;
        let r0 = els.get(iel);
        for d in 0..3 {
            let mut rp = r0;
            rp[d] += h;
            els.set(iel, rp);
            let fp = brute_force_log(&ions, &els, j1.functor());
            let mut rm = r0;
            rm[d] -= h;
            els.set(iel, rm);
            let fm = brute_force_log(&ions, &els, j1.functor());
            els.set(iel, r0);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (derivs.grad[iel][d] - fd).abs() < 1e-6,
                "d={d}: {} vs {fd}",
                derivs.grad[iel][d]
            );
        }
    }

    #[test]
    fn ratio_matches_log_difference() {
        let (ions, mut els, mut dist, mut j1) = setup(5, 7);
        let mut derivs = JastrowDerivs::zeros(5);
        j1.evaluate_log(&dist, &mut derivs);
        let log_old = brute_force_log(&ions, &els, j1.functor());
        let iel = 2;
        let rnew = [1.1, 2.3, 6.0];
        dist.propose(iel, rnew);
        let ratio = j1.ratio(&dist, iel);
        els.set(iel, rnew);
        let log_new = brute_force_log(&ions, &els, j1.functor());
        assert!((ratio - (log_new - log_old).exp()).abs() < 1e-10);
    }

    #[test]
    fn accept_sequence_stays_consistent() {
        let (ions, mut els, mut dist, mut j1) = setup(6, 9);
        let mut derivs = JastrowDerivs::zeros(6);
        j1.evaluate_log(&dist, &mut derivs);
        let lat = *els.lattice();
        let mut rng = StdRng::seed_from_u64(21);
        for step in 0..15 {
            let iel = step % 6;
            let rnew = lat.to_cart([
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ]);
            dist.propose(iel, rnew);
            let _ = j1.ratio(&dist, iel);
            dist.accept(iel);
            j1.accept(iel);
            els.set(iel, rnew);
        }
        let expect = brute_force_log(&ions, &els, j1.functor());
        assert!((j1.log_value() - expect).abs() < 1e-9);
    }

    #[test]
    fn derivs_accumulate_on_top_of_existing() {
        let (_, _, dist, mut j1) = setup(4, 11);
        let mut derivs = JastrowDerivs::zeros(4);
        derivs.lap[0] = 1.0;
        let _ = j1.evaluate_log(&dist, &mut derivs);
        let mut fresh = JastrowDerivs::zeros(4);
        let _ = j1.evaluate_log(&dist, &mut fresh);
        assert!((derivs.lap[0] - 1.0 - fresh.lap[0]).abs() < 1e-12);
        let _ = Lattice::cubic(1.0);
    }
}
