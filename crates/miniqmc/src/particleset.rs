//! Particle sets with SoA position storage and AoS accessors.
//!
//! The paper's enabling trick for migrating QMCPACK (Sec. V-A): keep the
//! *internal* layout SoA (three separate coordinate arrays → unit-stride
//! vector loads in distance kernels) while exposing the familiar AoS-style
//! `positions[i] → [x,y,z]` accessor so non-critical code is untouched.

use crate::lattice::Lattice;

/// A set of point particles in a periodic cell, stored SoA.
#[derive(Clone, Debug)]
pub struct ParticleSet {
    name: &'static str,
    lattice: Lattice,
    x: Vec<f64>,
    y: Vec<f64>,
    z: Vec<f64>,
}

impl ParticleSet {
    /// Create from AoS positions.
    pub fn new(name: &'static str, lattice: Lattice, positions: &[[f64; 3]]) -> Self {
        Self {
            name,
            lattice,
            x: positions.iter().map(|p| p[0]).collect(),
            y: positions.iter().map(|p| p[1]).collect(),
            z: positions.iter().map(|p| p[2]).collect(),
        }
    }

    #[inline]
    /// Name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    #[inline]
    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    #[inline]
    /// Lattice.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// AoS-style accessor (the overloaded `operator[]` of the paper).
    #[inline]
    pub fn get(&self, i: usize) -> [f64; 3] {
        [self.x[i], self.y[i], self.z[i]]
    }

    /// Move particle `i` (no wrapping; distance kernels apply minimum
    /// image).
    #[inline]
    pub fn set(&mut self, i: usize, r: [f64; 3]) {
        self.x[i] = r[0];
        self.y[i] = r[1];
        self.z[i] = r[2];
    }

    /// SoA coordinate streams.
    #[inline]
    pub fn soa(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.x, &self.y, &self.z)
    }

    /// Positions as AoS rows (copies; for baseline AoS kernels).
    pub fn to_aos(&self) -> Vec<[f64; 3]> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

/// Scatter `n_electrons` uniformly at random inside the cell — the
/// initial electron configuration of a VMC run.
pub fn random_electrons<R: rand::Rng>(
    lattice: Lattice,
    n_electrons: usize,
    rng: &mut R,
) -> ParticleSet {
    let positions: Vec<[f64; 3]> = (0..n_electrons)
        .map(|_| {
            lattice.to_cart([
                rng.random::<f64>(),
                rng.random::<f64>(),
                rng.random::<f64>(),
            ])
        })
        .collect();
    ParticleSet::new("e", lattice, &positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn aos_accessor_round_trip() {
        let lat = Lattice::cubic(3.0);
        let pos = [[0.1, 0.2, 0.3], [1.0, 1.1, 1.2]];
        let mut ps = ParticleSet::new("e", lat, &pos);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.get(1), [1.0, 1.1, 1.2]);
        ps.set(0, [2.0, 2.1, 2.2]);
        assert_eq!(ps.get(0), [2.0, 2.1, 2.2]);
        assert_eq!(ps.to_aos()[0], [2.0, 2.1, 2.2]);
    }

    #[test]
    fn soa_streams_match_aos_view() {
        let lat = Lattice::cubic(1.0);
        let pos = [[0.1, 0.2, 0.3], [0.4, 0.5, 0.6], [0.7, 0.8, 0.9]];
        let ps = ParticleSet::new("i", lat, &pos);
        let (x, y, z) = ps.soa();
        for i in 0..3 {
            assert_eq!([x[i], y[i], z[i]], ps.get(i));
        }
    }

    #[test]
    fn random_electrons_fill_cell() {
        let lat = Lattice::hexagonal(4.0, 9.0);
        let mut rng = StdRng::seed_from_u64(3);
        let ps = random_electrons(lat, 64, &mut rng);
        assert_eq!(ps.len(), 64);
        for i in 0..64 {
            let u = lat.to_frac(ps.get(i));
            for d in 0..3 {
                assert!((0.0..1.0).contains(&u[d]));
            }
        }
    }
}
