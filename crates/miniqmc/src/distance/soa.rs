//! SoA distance tables: coordinate-stream kernels, one vectorizable pass
//! per candidate image.
//!
//! Storage convention (QMCPACK SoA): for each *target* particle `i` the
//! distances (and displacement components) to all *sources* are a
//! contiguous row, so per-particle updates touch unit-stride memory.
//! Displacements are `source_j − target_i` under minimum image.

use super::{BoundaryKind, ImageShifts};
use crate::lattice::Lattice;
use crate::particleset::ParticleSet;

/// Kernel: minimum-image distances from one point to all sources given as
/// SoA streams. Writes `r`, `dx`, `dy`, `dz` rows (displacement =
/// source − point).
#[allow(clippy::too_many_arguments)]
pub fn distances_to_point(
    lattice: &Lattice,
    im: &ImageShifts,
    sx: &[f64],
    sy: &[f64],
    sz: &[f64],
    p: [f64; 3],
    r: &mut [f64],
    dx: &mut [f64],
    dy: &mut [f64],
    dz: &mut [f64],
) {
    let n = sx.len();
    let (r, dx, dy, dz) = (&mut r[..n], &mut dx[..n], &mut dy[..n], &mut dz[..n]);
    let (sx, sy, sz) = (&sx[..n], &sy[..n], &sz[..n]);
    match im.kind {
        BoundaryKind::Orthorhombic => {
            let [lx, ly, lz] = im.edges;
            for j in 0..n {
                let mut ddx = sx[j] - p[0];
                let mut ddy = sy[j] - p[1];
                let mut ddz = sz[j] - p[2];
                ddx -= lx * (ddx / lx).round();
                ddy -= ly * (ddy / ly).round();
                ddz -= lz * (ddz / lz).round();
                dx[j] = ddx;
                dy[j] = ddy;
                dz[j] = ddz;
                r[j] = (ddx * ddx + ddy * ddy + ddz * ddz).sqrt();
            }
        }
        BoundaryKind::General => {
            let g = lattice.jacobian();
            let a = &lattice.a;
            // Pass 1 (vectorizable): reduce to the central image in
            // fractional coordinates. `dx/dy/dz` hold the *base*
            // displacement throughout the scan; only the winning shift
            // index is tracked, then applied in a final pass (updating
            // the displacement mid-scan would chain shifts together).
            for j in 0..n {
                let rd = [sx[j] - p[0], sy[j] - p[1], sz[j] - p[2]];
                let mut u = [0.0f64; 3];
                for b in 0..3 {
                    u[b] = rd[0] * g[0][b] + rd[1] * g[1][b] + rd[2] * g[2][b];
                }
                for x in &mut u {
                    *x -= x.round();
                }
                let cx = u[0] * a[0][0] + u[1] * a[1][0] + u[2] * a[2][0];
                let cy = u[0] * a[0][1] + u[1] * a[1][1] + u[2] * a[2][1];
                let cz = u[0] * a[0][2] + u[1] * a[1][2] + u[2] * a[2][2];
                dx[j] = cx;
                dy[j] = cy;
                dz[j] = cz;
                r[j] = cx * cx + cy * cy + cz * cz; // r² for now
            }
            // Passes 2..28 (vectorizable): try each uniform image shift
            // against the base displacement.
            let mut best = vec![usize::MAX; n];
            for (si, s) in im.shifts.iter().enumerate() {
                if s == &[0.0, 0.0, 0.0] {
                    continue;
                }
                for j in 0..n {
                    let cx = dx[j] + s[0];
                    let cy = dy[j] + s[1];
                    let cz = dz[j] + s[2];
                    let r2 = cx * cx + cy * cy + cz * cz;
                    if r2 < r[j] {
                        r[j] = r2;
                        best[j] = si;
                    }
                }
            }
            // Final pass: apply the winning shift.
            for j in 0..n {
                if best[j] != usize::MAX {
                    let s = im.shifts[best[j]];
                    dx[j] += s[0];
                    dy[j] += s[1];
                    dz[j] += s[2];
                }
                r[j] = r[j].sqrt();
            }
        }
    }
}

/// Same-species (electron–electron) distance table, SoA layout.
#[derive(Clone, Debug)]
pub struct DistanceTableAA {
    n: usize,
    lattice: Lattice,
    im: ImageShifts,
    /// Row-major `n × n`: `r[i*n + j]` = |r_j − r_i| (min image).
    r: Vec<f64>,
    dx: Vec<f64>,
    dy: Vec<f64>,
    dz: Vec<f64>,
    /// Proposed-move scratch row.
    r_tmp: Vec<f64>,
    dx_tmp: Vec<f64>,
    dy_tmp: Vec<f64>,
    dz_tmp: Vec<f64>,
}

impl DistanceTableAA {
    /// Create a new instance.
    pub fn new(ps: &ParticleSet) -> Self {
        let n = ps.len();
        let mut t = Self {
            n,
            lattice: *ps.lattice(),
            im: ImageShifts::new(ps.lattice()),
            r: vec![0.0; n * n],
            dx: vec![0.0; n * n],
            dy: vec![0.0; n * n],
            dz: vec![0.0; n * n],
            r_tmp: vec![0.0; n],
            dx_tmp: vec![0.0; n],
            dy_tmp: vec![0.0; n],
            dz_tmp: vec![0.0; n],
        };
        t.rebuild(ps);
        t
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Full O(N²) recompute.
    pub fn rebuild(&mut self, ps: &ParticleSet) {
        let (sx, sy, sz) = ps.soa();
        for i in 0..self.n {
            let p = ps.get(i);
            let lo = i * self.n;
            let hi = lo + self.n;
            distances_to_point(
                &self.lattice,
                &self.im,
                sx,
                sy,
                sz,
                p,
                &mut self.r[lo..hi],
                &mut self.dx[lo..hi],
                &mut self.dy[lo..hi],
                &mut self.dz[lo..hi],
            );
            // Self-distance slot: set to 0 exactly.
            self.r[lo + i] = 0.0;
            self.dx[lo + i] = 0.0;
            self.dy[lo + i] = 0.0;
            self.dz[lo + i] = 0.0;
        }
    }

    /// Distances from particle `i` to every particle (entry `i` itself is
    /// zero).
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.r[i * self.n..(i + 1) * self.n]
    }

    /// Displacement component rows for particle `i`.
    #[inline]
    pub fn disp_rows(&self, i: usize) -> (&[f64], &[f64], &[f64]) {
        let lo = i * self.n;
        let hi = lo + self.n;
        (&self.dx[lo..hi], &self.dy[lo..hi], &self.dz[lo..hi])
    }

    #[inline]
    /// Cached minimum-image distance between two particles.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.r[i * self.n + j]
    }

    /// Displacement `r_j − r_i` (minimum image).
    #[inline]
    pub fn displacement(&self, i: usize, j: usize) -> [f64; 3] {
        let k = i * self.n + j;
        [self.dx[k], self.dy[k], self.dz[k]]
    }

    /// Compute the scratch row for moving `iel` to `rnew`.
    pub fn propose(&mut self, ps: &ParticleSet, iel: usize, rnew: [f64; 3]) {
        let (sx, sy, sz) = ps.soa();
        distances_to_point(
            &self.lattice,
            &self.im,
            sx,
            sy,
            sz,
            rnew,
            &mut self.r_tmp,
            &mut self.dx_tmp,
            &mut self.dy_tmp,
            &mut self.dz_tmp,
        );
        self.r_tmp[iel] = 0.0;
        self.dx_tmp[iel] = 0.0;
        self.dy_tmp[iel] = 0.0;
        self.dz_tmp[iel] = 0.0;
    }

    /// Scratch row from the last [`Self::propose`].
    #[inline]
    pub fn temp_row(&self) -> &[f64] {
        &self.r_tmp
    }

    #[inline]
    /// Temp disp.
    pub fn temp_disp(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.dx_tmp, &self.dy_tmp, &self.dz_tmp)
    }

    /// Commit the proposed move of `iel`: overwrite its row and mirror
    /// into the column (distance symmetric, displacement antisymmetric).
    pub fn accept(&mut self, iel: usize) {
        let n = self.n;
        let lo = iel * n;
        self.r[lo..lo + n].copy_from_slice(&self.r_tmp);
        self.dx[lo..lo + n].copy_from_slice(&self.dx_tmp);
        self.dy[lo..lo + n].copy_from_slice(&self.dy_tmp);
        self.dz[lo..lo + n].copy_from_slice(&self.dz_tmp);
        for j in 0..n {
            let k = j * n + iel;
            self.r[k] = self.r_tmp[j];
            // Row iel stores r_j − r_new; column stores r_new − r_j.
            self.dx[k] = -self.dx_tmp[j];
            self.dy[k] = -self.dy_tmp[j];
            self.dz[k] = -self.dz_tmp[j];
        }
    }
}

/// Two-species (ion–electron) table: fixed sources, moving targets.
/// Row `e` holds the distances from electron `e` to every ion.
#[derive(Clone, Debug)]
pub struct DistanceTableAB {
    n_src: usize,
    n_tgt: usize,
    lattice: Lattice,
    im: ImageShifts,
    sx: Vec<f64>,
    sy: Vec<f64>,
    sz: Vec<f64>,
    r: Vec<f64>,
    dx: Vec<f64>,
    dy: Vec<f64>,
    dz: Vec<f64>,
    r_tmp: Vec<f64>,
    dx_tmp: Vec<f64>,
    dy_tmp: Vec<f64>,
    dz_tmp: Vec<f64>,
}

impl DistanceTableAB {
    /// Create a new instance.
    pub fn new(sources: &ParticleSet, targets: &ParticleSet) -> Self {
        let (sx, sy, sz) = sources.soa();
        let n_src = sources.len();
        let n_tgt = targets.len();
        let mut t = Self {
            n_src,
            n_tgt,
            lattice: *targets.lattice(),
            im: ImageShifts::new(targets.lattice()),
            sx: sx.to_vec(),
            sy: sy.to_vec(),
            sz: sz.to_vec(),
            r: vec![0.0; n_src * n_tgt],
            dx: vec![0.0; n_src * n_tgt],
            dy: vec![0.0; n_src * n_tgt],
            dz: vec![0.0; n_src * n_tgt],
            r_tmp: vec![0.0; n_src],
            dx_tmp: vec![0.0; n_src],
            dy_tmp: vec![0.0; n_src],
            dz_tmp: vec![0.0; n_src],
        };
        t.rebuild(targets);
        t
    }

    #[inline]
    /// Number of source particles (ions).
    pub fn n_sources(&self) -> usize {
        self.n_src
    }

    #[inline]
    /// Number of target particles (electrons).
    pub fn n_targets(&self) -> usize {
        self.n_tgt
    }

    /// Full table recompute from current positions.
    pub fn rebuild(&mut self, targets: &ParticleSet) {
        for e in 0..self.n_tgt {
            let p = targets.get(e);
            let lo = e * self.n_src;
            let hi = lo + self.n_src;
            distances_to_point(
                &self.lattice,
                &self.im,
                &self.sx,
                &self.sy,
                &self.sz,
                p,
                &mut self.r[lo..hi],
                &mut self.dx[lo..hi],
                &mut self.dy[lo..hi],
                &mut self.dz[lo..hi],
            );
        }
    }

    /// Distances from electron `e` to all ions.
    #[inline]
    pub fn row(&self, e: usize) -> &[f64] {
        &self.r[e * self.n_src..(e + 1) * self.n_src]
    }

    #[inline]
    /// Disp rows.
    pub fn disp_rows(&self, e: usize) -> (&[f64], &[f64], &[f64]) {
        let lo = e * self.n_src;
        let hi = lo + self.n_src;
        (&self.dx[lo..hi], &self.dy[lo..hi], &self.dz[lo..hi])
    }

    /// Compute the scratch row for a proposed single-particle move.
    pub fn propose(&mut self, iel: usize, rnew: [f64; 3]) {
        let _ = iel;
        distances_to_point(
            &self.lattice,
            &self.im,
            &self.sx,
            &self.sy,
            &self.sz,
            rnew,
            &mut self.r_tmp,
            &mut self.dx_tmp,
            &mut self.dy_tmp,
            &mut self.dz_tmp,
        );
    }

    #[inline]
    /// Temp row.
    pub fn temp_row(&self) -> &[f64] {
        &self.r_tmp
    }

    #[inline]
    /// Temp disp.
    pub fn temp_disp(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.dx_tmp, &self.dy_tmp, &self.dz_tmp)
    }

    /// Commit the proposed move.
    pub fn accept(&mut self, iel: usize) {
        let lo = iel * self.n_src;
        let n = self.n_src;
        self.r[lo..lo + n].copy_from_slice(&self.r_tmp);
        self.dx[lo..lo + n].copy_from_slice(&self.dx_tmp);
        self.dy[lo..lo + n].copy_from_slice(&self.dy_tmp);
        self.dz[lo..lo + n].copy_from_slice(&self.dz_tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::graphite_supercell;
    use crate::particleset::random_electrons;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn electrons(lat: Lattice, n: usize, seed: u64) -> ParticleSet {
        random_electrons(lat, n, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn aa_matches_lattice_min_image() {
        for lat in [Lattice::cubic(4.0), Lattice::hexagonal(3.0, 7.0)] {
            let ps = electrons(lat, 12, 5);
            let t = DistanceTableAA::new(&ps);
            for i in 0..12 {
                for j in 0..12 {
                    let (_, r_ref) = lat.min_image(ps.get(i), ps.get(j));
                    assert!(
                        (t.distance(i, j) - r_ref).abs() < 1e-10,
                        "({i},{j}): {} vs {r_ref}",
                        t.distance(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn aa_symmetry_and_antisymmetry() {
        let ps = electrons(Lattice::hexagonal(2.5, 6.0), 10, 7);
        let t = DistanceTableAA::new(&ps);
        for i in 0..10 {
            assert_eq!(t.distance(i, i), 0.0);
            for j in 0..10 {
                assert!((t.distance(i, j) - t.distance(j, i)).abs() < 1e-12);
                let dij = t.displacement(i, j);
                let dji = t.displacement(j, i);
                for d in 0..3 {
                    assert!((dij[d] + dji[d]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn displacement_length_equals_distance() {
        let ps = electrons(Lattice::cubic(3.0), 8, 11);
        let t = DistanceTableAA::new(&ps);
        for i in 0..8 {
            for j in 0..8 {
                let d = t.displacement(i, j);
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                assert!((r - t.distance(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn propose_accept_matches_rebuild() {
        let lat = Lattice::hexagonal(3.0, 7.0);
        let mut ps = electrons(lat, 9, 13);
        let mut t = DistanceTableAA::new(&ps);
        let rnew = [1.234, 0.456, 3.21];
        t.propose(&ps, 4, rnew);
        t.accept(4);
        ps.set(4, rnew);
        let fresh = DistanceTableAA::new(&ps);
        for i in 0..9 {
            for j in 0..9 {
                assert!(
                    (t.distance(i, j) - fresh.distance(i, j)).abs() < 1e-12,
                    "({i},{j})"
                );
                let (a, b) = (t.displacement(i, j), fresh.displacement(i, j));
                for d in 0..3 {
                    assert!((a[d] - b[d]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn ab_table_rows_match_reference() {
        let (lat, ions_pos) = graphite_supercell(2, 2, 1);
        let ions = ParticleSet::new("ion", lat, &ions_pos);
        let els = electrons(lat, 6, 17);
        let t = DistanceTableAB::new(&ions, &els);
        assert_eq!(t.n_sources(), 16);
        assert_eq!(t.n_targets(), 6);
        for e in 0..6 {
            for i in 0..16 {
                let (_, r_ref) = lat.min_image(els.get(e), ions_pos[i]);
                assert!((t.row(e)[i] - r_ref).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn ab_propose_accept_updates_row_only() {
        let (lat, ions_pos) = graphite_supercell(1, 1, 1);
        let ions = ParticleSet::new("ion", lat, &ions_pos);
        let els = electrons(lat, 4, 19);
        let mut t = DistanceTableAB::new(&ions, &els);
        let before_row2: Vec<f64> = t.row(2).to_vec();
        t.propose(1, [0.5, 0.5, 0.5]);
        t.accept(1);
        for i in 0..4 {
            let (_, r_ref) = lat.min_image([0.5, 0.5, 0.5], ions_pos[i]);
            assert!((t.row(1)[i] - r_ref).abs() < 1e-10);
        }
        assert_eq!(t.row(2), &before_row2[..]);
    }
}
