//! Distance tables — the second-hottest kernel group of the QMC profile
//! (Tables II/III: 23–39 % of runtime before optimization).
//!
//! A distance table caches minimum-image distances (and displacements)
//! between particle sets, updated incrementally as the VMC driver moves
//! one electron at a time:
//!
//! * [`aos`] — the baseline: positions consumed through AoS rows,
//!   per-pair scalar minimum-image scans (how pre-SoA QMCPACK computed
//!   them);
//! * [`soa`] — the optimized version from the paper's companion effort
//!   (Sec. IV: "we optimize Distance-Tables and Jastrow kernels with the
//!   SoA transformation"): coordinate streams, one vectorizable pass per
//!   candidate periodic image.
//!
//! Both produce identical tables; the benchmark harness times them
//! against each other for the Table II → Table III profile shift.

pub mod aos;
pub mod soa;

use crate::lattice::Lattice;

/// How the minimum image is computed for a cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryKind {
    /// Diagonal lattice: single-pass `d -= L·round(d/L)` per axis.
    Orthorhombic,
    /// General cell: scan a precomputed shell of 27 image shifts after
    /// fractional reduction.
    General,
}

/// Precomputed periodic-image machinery for one lattice.
#[derive(Clone, Debug)]
pub struct ImageShifts {
    /// Kind.
    pub kind: BoundaryKind,
    /// Cartesian shift vectors of the 27-image shell (General only).
    pub shifts: Vec<[f64; 3]>,
    /// Diagonal edge lengths (Orthorhombic only).
    pub edges: [f64; 3],
}

impl ImageShifts {
    /// Create a new instance.
    pub fn new(lattice: &Lattice) -> Self {
        let a = &lattice.a;
        let is_diag = a[0][1] == 0.0
            && a[0][2] == 0.0
            && a[1][0] == 0.0
            && a[1][2] == 0.0
            && a[2][0] == 0.0
            && a[2][1] == 0.0;
        if is_diag {
            Self {
                kind: BoundaryKind::Orthorhombic,
                shifts: vec![[0.0; 3]],
                edges: [a[0][0], a[1][1], a[2][2]],
            }
        } else {
            let mut shifts = Vec::with_capacity(27);
            for di in -1i32..=1 {
                for dj in -1i32..=1 {
                    for dk in -1i32..=1 {
                        shifts.push(
                            lattice.to_cart([di as f64, dj as f64, dk as f64]),
                        );
                    }
                }
            }
            Self {
                kind: BoundaryKind::General,
                shifts,
                edges: [0.0; 3],
            }
        }
    }
}

/// Scalar minimum-image displacement `b − a` using the shift machinery
/// (shared by the AoS kernels and used as the SoA reference).
pub fn min_image_scalar(
    lattice: &Lattice,
    im: &ImageShifts,
    a: [f64; 3],
    b: [f64; 3],
) -> ([f64; 3], f64) {
    match im.kind {
        BoundaryKind::Orthorhombic => {
            let mut d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            for (x, l) in d.iter_mut().zip(im.edges) {
                *x -= l * (*x / l).round();
            }
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            (d, r)
        }
        BoundaryKind::General => {
            let raw = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            let mut u = lattice.to_frac(raw);
            for x in &mut u {
                *x -= x.round();
            }
            let base = lattice.to_cart(u);
            let mut best = base;
            let mut best_r2 = f64::INFINITY;
            for s in &im.shifts {
                let c = [base[0] + s[0], base[1] + s[1], base[2] + s[2]];
                let r2 = c[0] * c[0] + c[1] * c[1] + c[2] * c[2];
                if r2 < best_r2 {
                    best_r2 = r2;
                    best = c;
                }
            }
            (best, best_r2.sqrt())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthorhombic_detected() {
        let im = ImageShifts::new(&Lattice::orthorhombic(2.0, 3.0, 4.0));
        assert_eq!(im.kind, BoundaryKind::Orthorhombic);
        assert_eq!(im.edges, [2.0, 3.0, 4.0]);
    }

    #[test]
    fn general_detected_with_27_shifts() {
        let im = ImageShifts::new(&Lattice::hexagonal(2.0, 5.0));
        assert_eq!(im.kind, BoundaryKind::General);
        assert_eq!(im.shifts.len(), 27);
    }

    #[test]
    fn scalar_min_image_matches_lattice_reference() {
        for lat in [
            Lattice::cubic(3.0),
            Lattice::orthorhombic(2.0, 5.0, 7.0),
            Lattice::hexagonal(3.0, 8.0),
        ] {
            let im = ImageShifts::new(&lat);
            let pts = [[0.1, 0.2, 0.3], [2.5, 1.8, 6.5], [-0.9, 3.1, 0.0]];
            for a in pts {
                for b in pts {
                    let (_, r_ref) = lat.min_image(a, b);
                    let (_, r) = min_image_scalar(&lat, &im, a, b);
                    assert!((r - r_ref).abs() < 1e-10, "{lat:?} {a:?} {b:?}");
                }
            }
        }
    }
}
