//! Baseline AoS distance tables: per-pair scalar minimum-image scans over
//! `[x,y,z]` position rows — the pre-SoA QMCPACK implementation the
//! Table II profile was measured with.
//!
//! Same API and results as [`super::soa`]; only the memory access pattern
//! differs (AoS rows, pairwise scalar kernel, no stream reuse).

use super::{min_image_scalar, ImageShifts};
use crate::lattice::Lattice;
use crate::particleset::ParticleSet;

/// Same-species AoS distance table.
#[derive(Clone, Debug)]
pub struct DistanceTableAAAoS {
    n: usize,
    lattice: Lattice,
    im: ImageShifts,
    /// `table[i][j] = (displacement, distance)` from i to j.
    table: Vec<([f64; 3], f64)>,
    tmp: Vec<([f64; 3], f64)>,
}

impl DistanceTableAAAoS {
    /// Create a new instance.
    pub fn new(ps: &ParticleSet) -> Self {
        let n = ps.len();
        let mut t = Self {
            n,
            lattice: *ps.lattice(),
            im: ImageShifts::new(ps.lattice()),
            table: vec![([0.0; 3], 0.0); n * n],
            tmp: vec![([0.0; 3], 0.0); n],
        };
        t.rebuild(ps);
        t
    }

    #[inline]
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    #[inline]
    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Full table recompute from current positions.
    pub fn rebuild(&mut self, ps: &ParticleSet) {
        let rows = ps.to_aos();
        for i in 0..self.n {
            for j in 0..self.n {
                self.table[i * self.n + j] = if i == j {
                    ([0.0; 3], 0.0)
                } else {
                    min_image_scalar(&self.lattice, &self.im, rows[i], rows[j])
                };
            }
        }
    }

    #[inline]
    /// Cached minimum-image distance between two particles.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.table[i * self.n + j].1
    }

    #[inline]
    /// Cached minimum-image displacement between two particles.
    pub fn displacement(&self, i: usize, j: usize) -> [f64; 3] {
        self.table[i * self.n + j].0
    }

    /// Compute the scratch row for a proposed single-particle move.
    pub fn propose(&mut self, ps: &ParticleSet, iel: usize, rnew: [f64; 3]) {
        for j in 0..self.n {
            self.tmp[j] = if j == iel {
                ([0.0; 3], 0.0)
            } else {
                min_image_scalar(&self.lattice, &self.im, rnew, ps.get(j))
            };
        }
    }

    #[inline]
    /// Scratch-row distance from the last proposal.
    pub fn temp_distance(&self, j: usize) -> f64 {
        self.tmp[j].1
    }

    #[inline]
    /// Scratch-row displacement from the last proposal.
    pub fn temp_displacement(&self, j: usize) -> [f64; 3] {
        self.tmp[j].0
    }

    /// Commit the proposed move.
    pub fn accept(&mut self, iel: usize) {
        for j in 0..self.n {
            self.table[iel * self.n + j] = self.tmp[j];
            let (d, r) = self.tmp[j];
            self.table[j * self.n + iel] = ([-d[0], -d[1], -d[2]], r);
        }
    }
}

/// Two-species AoS table (fixed ion sources).
#[derive(Clone, Debug)]
pub struct DistanceTableABAoS {
    n_src: usize,
    n_tgt: usize,
    lattice: Lattice,
    im: ImageShifts,
    sources: Vec<[f64; 3]>,
    table: Vec<([f64; 3], f64)>,
    tmp: Vec<([f64; 3], f64)>,
}

impl DistanceTableABAoS {
    /// Create a new instance.
    pub fn new(sources: &ParticleSet, targets: &ParticleSet) -> Self {
        let n_src = sources.len();
        let n_tgt = targets.len();
        let mut t = Self {
            n_src,
            n_tgt,
            lattice: *targets.lattice(),
            im: ImageShifts::new(targets.lattice()),
            sources: sources.to_aos(),
            table: vec![([0.0; 3], 0.0); n_src * n_tgt],
            tmp: vec![([0.0; 3], 0.0); n_src],
        };
        t.rebuild(targets);
        t
    }

    #[inline]
    /// Number of source particles (ions).
    pub fn n_sources(&self) -> usize {
        self.n_src
    }

    /// Full table recompute from current positions.
    pub fn rebuild(&mut self, targets: &ParticleSet) {
        for e in 0..self.n_tgt {
            let re = targets.get(e);
            for i in 0..self.n_src {
                self.table[e * self.n_src + i] =
                    min_image_scalar(&self.lattice, &self.im, re, self.sources[i]);
            }
        }
    }

    #[inline]
    /// Cached minimum-image distance between two particles.
    pub fn distance(&self, e: usize, i: usize) -> f64 {
        self.table[e * self.n_src + i].1
    }

    #[inline]
    /// Cached minimum-image displacement between two particles.
    pub fn displacement(&self, e: usize, i: usize) -> [f64; 3] {
        self.table[e * self.n_src + i].0
    }

    /// Compute the scratch row for a proposed single-particle move.
    pub fn propose(&mut self, rnew: [f64; 3]) {
        for i in 0..self.n_src {
            self.tmp[i] = min_image_scalar(&self.lattice, &self.im, rnew, self.sources[i]);
        }
    }

    #[inline]
    /// Scratch-row distance from the last proposal.
    pub fn temp_distance(&self, i: usize) -> f64 {
        self.tmp[i].1
    }

    /// Commit the proposed move.
    pub fn accept(&mut self, iel: usize) {
        let lo = iel * self.n_src;
        self.table[lo..lo + self.n_src].copy_from_slice(&self.tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::soa::{DistanceTableAA, DistanceTableAB};
    use crate::lattice::graphite_supercell;
    use crate::particleset::random_electrons;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn aos_and_soa_tables_agree() {
        for lat in [Lattice::cubic(5.0), Lattice::hexagonal(3.5, 9.0)] {
            let ps = random_electrons(lat, 14, &mut StdRng::seed_from_u64(23));
            let aos = DistanceTableAAAoS::new(&ps);
            let soa = DistanceTableAA::new(&ps);
            for i in 0..14 {
                for j in 0..14 {
                    assert!(
                        (aos.distance(i, j) - soa.distance(i, j)).abs() < 1e-10,
                        "({i},{j})"
                    );
                    let (da, ds) = (aos.displacement(i, j), soa.displacement(i, j));
                    for d in 0..3 {
                        assert!((da[d] - ds[d]).abs() < 1e-10);
                    }
                }
            }
        }
    }

    #[test]
    fn aos_propose_accept_matches_soa() {
        let lat = Lattice::hexagonal(3.0, 8.0);
        let ps = random_electrons(lat, 8, &mut StdRng::seed_from_u64(29));
        let mut aos = DistanceTableAAAoS::new(&ps);
        let mut soa = DistanceTableAA::new(&ps);
        let rnew = [0.9, 1.1, 4.0];
        aos.propose(&ps, 3, rnew);
        soa.propose(&ps, 3, rnew);
        for j in 0..8 {
            assert!((aos.temp_distance(j) - soa.temp_row()[j]).abs() < 1e-10);
        }
        aos.accept(3);
        soa.accept(3);
        for i in 0..8 {
            for j in 0..8 {
                assert!((aos.distance(i, j) - soa.distance(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn ab_aos_matches_soa() {
        let (lat, ions_pos) = graphite_supercell(2, 1, 1);
        let ions = ParticleSet::new("ion", lat, &ions_pos);
        let els = random_electrons(lat, 5, &mut StdRng::seed_from_u64(31));
        let aos = DistanceTableABAoS::new(&ions, &els);
        let soa = DistanceTableAB::new(&ions, &els);
        for e in 0..5 {
            for i in 0..aos.n_sources() {
                assert!((aos.distance(e, i) - soa.row(e)[i]).abs() < 1e-10);
            }
        }
    }
}
