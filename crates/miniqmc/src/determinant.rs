//! Dirac (Slater) determinant with O(N²) Sherman–Morrison row updates
//! (paper Sec. III, Eqs. 2–4).
//!
//! The matrix is `A[e][n] = φ_n(r_e)` (electrons × orbitals). A
//! particle-by-particle move replaces one row; the ratio
//! `det A′ / det A = Σ_n φ_n(r′_e)·A⁻¹[n][e]` costs O(N) and the inverse
//! update O(N²), instead of O(N³) for re-factorization.

/// LU factorization with partial pivoting of a dense row-major matrix.
/// Returns `(sign, log|det|)` and overwrites `a` with the LU factors.
/// `piv` receives the permutation.
fn lu_factor(a: &mut [f64], n: usize, piv: &mut [usize]) -> (f64, f64) {
    let mut sign = 1.0;
    let mut log_det = 0.0;
    for (i, p) in piv.iter_mut().enumerate() {
        *p = i;
    }
    for k in 0..n {
        // Pivot search.
        let mut imax = k;
        let mut vmax = a[k * n + k].abs();
        for i in (k + 1)..n {
            let v = a[i * n + k].abs();
            if v > vmax {
                vmax = v;
                imax = i;
            }
        }
        assert!(vmax > 0.0, "singular Slater matrix in LU at column {k}");
        if imax != k {
            for j in 0..n {
                a.swap(k * n + j, imax * n + j);
            }
            piv.swap(k, imax);
            sign = -sign;
        }
        let pivot = a[k * n + k];
        if pivot < 0.0 {
            sign = -sign;
        }
        log_det += pivot.abs().ln();
        let inv_p = 1.0 / pivot;
        for i in (k + 1)..n {
            let m = a[i * n + k] * inv_p;
            a[i * n + k] = m;
            for j in (k + 1)..n {
                a[i * n + j] -= m * a[k * n + j];
            }
        }
    }
    (sign, log_det)
}

/// Solve `LU x = P b` in place given factors from [`lu_factor`].
fn lu_solve(lu: &[f64], n: usize, piv: &[usize], b: &mut [f64]) {
    // Apply permutation.
    let mut x: Vec<f64> = (0..n).map(|i| b[piv[i]]).collect();
    // Forward substitution (L has unit diagonal).
    for i in 1..n {
        let mut s = x[i];
        for j in 0..i {
            s -= lu[i * n + j] * x[j];
        }
        x[i] = s;
    }
    // Back substitution.
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= lu[i * n + j] * x[j];
        }
        x[i] = s / lu[i * n + i];
    }
    b.copy_from_slice(&x);
}

/// Dense inverse + log-determinant via LU (the O(N³) reference path used
/// at build time and in delayed-refresh).
pub fn invert_log_det(a: &[f64], n: usize) -> (Vec<f64>, f64, f64) {
    assert_eq!(a.len(), n * n);
    let mut lu = a.to_vec();
    let mut piv = vec![0usize; n];
    let (sign, log_det) = lu_factor(&mut lu, n, &mut piv);
    let mut inv = vec![0.0; n * n];
    let mut col = vec![0.0; n];
    for j in 0..n {
        col.iter_mut().for_each(|x| *x = 0.0);
        col[j] = 1.0;
        lu_solve(&lu, n, &piv, &mut col);
        for i in 0..n {
            inv[i * n + j] = col[i];
        }
    }
    (inv, sign, log_det)
}

/// Slater determinant state for one spin channel.
#[derive(Clone, Debug)]
pub struct DiracDeterminant {
    n: usize,
    /// `A[e][n] = φ_n(r_e)`, row-major.
    psi: Vec<f64>,
    /// Transposed inverse: `inv_t[e][n] = A⁻¹[n][e]` — the ratio dot
    /// product walks a unit-stride row.
    inv_t: Vec<f64>,
    log_det: f64,
    sign: f64,
    /// Scratch for accept (the p-vector of the rank-1 update).
    p: Vec<f64>,
    /// Pending move state.
    pending_ratio: f64,
    pending_e: usize,
}

impl DiracDeterminant {
    /// Build from the full value matrix `values[e][n]` (row-major,
    /// `n_el × n_el`).
    pub fn build(values: &[f64], n: usize) -> Self {
        assert_eq!(values.len(), n * n);
        let (inv, sign, log_det) = invert_log_det(values, n);
        let mut inv_t = vec![0.0; n * n];
        for k in 0..n {
            for e in 0..n {
                inv_t[e * n + k] = inv[k * n + e];
            }
        }
        Self {
            n,
            psi: values.to_vec(),
            inv_t,
            log_det,
            sign,
            p: vec![0.0; n],
            pending_ratio: f64::NAN,
            pending_e: usize::MAX,
        }
    }

    #[inline]
    /// N electrons.
    pub fn n_electrons(&self) -> usize {
        self.n
    }

    #[inline]
    /// Log det.
    pub fn log_det(&self) -> f64 {
        self.log_det
    }

    #[inline]
    /// Sign.
    pub fn sign(&self) -> f64 {
        self.sign
    }

    /// Determinant ratio for replacing electron `e`'s orbital values with
    /// `phi_new` (Eq. 3): `R = Σ_n φ_n(r′)·A⁻¹[n][e]`.
    pub fn ratio(&mut self, e: usize, phi_new: &[f64]) -> f64 {
        let row = &self.inv_t[e * self.n..(e + 1) * self.n];
        let r: f64 = phi_new[..self.n]
            .iter()
            .zip(row)
            .map(|(p, b)| p * b)
            .sum();
        self.pending_ratio = r;
        self.pending_e = e;
        r
    }

    /// Gradient of `log det` for electron `e` (Eq. 4) given the orbital
    /// gradient streams at the *current* position.
    pub fn grad_log(&self, e: usize, gx: &[f64], gy: &[f64], gz: &[f64]) -> [f64; 3] {
        let row = &self.inv_t[e * self.n..(e + 1) * self.n];
        let mut g = [0.0; 3];
        for (k, b) in row.iter().enumerate() {
            g[0] += gx[k] * b;
            g[1] += gy[k] * b;
            g[2] += gz[k] * b;
        }
        g
    }

    /// Laplacian of `log det` for electron `e`:
    /// `Σ_n ∇²φ_n·B[n][e] − |∇ log det|²`.
    pub fn lap_log(&self, e: usize, lap: &[f64], grad: [f64; 3]) -> f64 {
        let row = &self.inv_t[e * self.n..(e + 1) * self.n];
        let s: f64 = row.iter().zip(lap).map(|(b, l)| b * l).sum();
        s - (grad[0] * grad[0] + grad[1] * grad[1] + grad[2] * grad[2])
    }

    /// Commit the pending move: Sherman–Morrison rank-1 update of the
    /// inverse in O(N²).
    pub fn accept(&mut self, e: usize, phi_new: &[f64]) {
        assert_eq!(e, self.pending_e, "accept must follow ratio for the same electron");
        let r = self.pending_ratio;
        assert!(r != 0.0 && r.is_finite(), "degenerate determinant ratio {r}");
        let n = self.n;

        // p[j] = φ_new · B[:,j]  for every electron column j.
        for j in 0..n {
            let row_j = &self.inv_t[j * n..(j + 1) * n];
            self.p[j] = phi_new[..n]
                .iter()
                .zip(row_j)
                .map(|(a, b)| a * b)
                .sum();
        }

        // c = old B[:,e] (copy, because row e of inv_t is also updated).
        let c: Vec<f64> = self.inv_t[e * n..(e + 1) * n].to_vec();
        let inv_r = 1.0 / r;
        for j in 0..n {
            let w = if j == e { r - 1.0 } else { self.p[j] };
            let scale = w * inv_r;
            if scale != 0.0 {
                let row_j = &mut self.inv_t[j * n..(j + 1) * n];
                for (x, ck) in row_j.iter_mut().zip(&c) {
                    *x -= scale * ck;
                }
            }
        }

        self.psi[e * n..(e + 1) * n].copy_from_slice(&phi_new[..n]);
        self.log_det += r.abs().ln();
        if r < 0.0 {
            self.sign = -self.sign;
        }
        self.pending_e = usize::MAX;
        self.pending_ratio = f64::NAN;
    }

    /// Numerical-hygiene refresh: re-factorize from the stored value
    /// matrix (QMCPACK does this periodically to bound SM drift).
    pub fn refresh(&mut self) {
        let fresh = Self::build(&self.psi, self.n);
        self.inv_t = fresh.inv_t;
        self.log_det = fresh.log_det;
        self.sign = fresh.sign;
    }

    /// Max |A·A⁻¹ − I| — drift diagnostic used by tests.
    pub fn inverse_error(&self) -> f64 {
        let n = self.n;
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                // (A B)[i][j] = Σ_k A[i][k] B[k][j]; B[k][j] = inv_t[j][k]
                let mut s = 0.0;
                for k in 0..n {
                    s += self.psi[i * n + k] * self.inv_t[j * n + k];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((s - expect).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        // Diagonally-boosted random matrix: well conditioned.
        let mut a: Vec<f64> = (0..n * n).map(|_| rng.random::<f64>() - 0.5).collect();
        for i in 0..n {
            a[i * n + i] += 2.0;
        }
        a
    }

    fn dense_det(a: &[f64], n: usize) -> f64 {
        let mut lu = a.to_vec();
        let mut piv = vec![0; n];
        let (sign, log) = lu_factor(&mut lu, n, &mut piv);
        sign * log.exp()
    }

    #[test]
    fn lu_det_of_known_matrix() {
        // det [[4,3],[6,3]] = -6
        let a = vec![4.0, 3.0, 6.0, 3.0];
        assert!((dense_det(&a, 2) + 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_is_correct() {
        let n = 12;
        let a = random_matrix(n, 1);
        let det = DiracDeterminant::build(&a, n);
        assert!(det.inverse_error() < 1e-10);
    }

    #[test]
    fn log_det_matches_dense() {
        let n = 9;
        let a = random_matrix(n, 2);
        let det = DiracDeterminant::build(&a, n);
        let d = dense_det(&a, n);
        assert!((det.log_det() - d.abs().ln()).abs() < 1e-9);
        assert_eq!(det.sign(), d.signum());
    }

    #[test]
    fn ratio_matches_dense_recompute() {
        let n = 8;
        let a = random_matrix(n, 3);
        let mut det = DiracDeterminant::build(&a, n);
        let mut rng = StdRng::seed_from_u64(4);
        for e in 0..n {
            let phi: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
            let r = det.ratio(e, &phi);
            let mut a2 = a.clone();
            a2[e * n..(e + 1) * n].copy_from_slice(&phi);
            let expect = dense_det(&a2, n) / dense_det(&a, n);
            assert!((r - expect).abs() < 1e-9, "e={e}: {r} vs {expect}");
        }
    }

    #[test]
    fn accept_updates_inverse_exactly() {
        let n = 10;
        let a = random_matrix(n, 5);
        let mut det = DiracDeterminant::build(&a, n);
        let mut rng = StdRng::seed_from_u64(6);
        let mut current = a;
        for step in 0..30 {
            let e = step % n;
            let phi: Vec<f64> = (0..n)
                .map(|k| current[e * n + k] + 0.2 * (rng.random::<f64>() - 0.5))
                .collect();
            let _ = det.ratio(e, &phi);
            det.accept(e, &phi);
            current[e * n..(e + 1) * n].copy_from_slice(&phi);
        }
        assert!(det.inverse_error() < 1e-7, "err={}", det.inverse_error());
        let expect = dense_det(&current, n);
        assert!((det.log_det() - expect.abs().ln()).abs() < 1e-7);
        assert_eq!(det.sign(), expect.signum());
    }

    #[test]
    fn sign_flips_on_negative_ratio() {
        let n = 4;
        let a = random_matrix(n, 7);
        let mut det = DiracDeterminant::build(&a, n);
        let sign0 = det.sign();
        // Negate one row: det flips sign, ratio = -1.
        let phi: Vec<f64> = a[0..n].iter().map(|x| -x).collect();
        let r = det.ratio(0, &phi);
        assert!((r + 1.0).abs() < 1e-12);
        det.accept(0, &phi);
        assert_eq!(det.sign(), -sign0);
    }

    #[test]
    fn refresh_restores_precision() {
        let n = 6;
        let a = random_matrix(n, 8);
        let mut det = DiracDeterminant::build(&a, n);
        let mut rng = StdRng::seed_from_u64(9);
        for step in 0..200 {
            let e = step % n;
            let phi: Vec<f64> =
                (0..n).map(|_| rng.random::<f64>() - 0.5 + 0.3).collect();
            let r = det.ratio(e, &phi);
            if r.abs() > 1e-3 {
                det.accept(e, &phi);
            }
        }
        det.refresh();
        assert!(det.inverse_error() < 1e-11);
    }

    #[test]
    fn grad_log_matches_finite_difference() {
        // φ_n as analytic functions of one electron's position.
        let n = 5;
        let phis: Vec<Box<dyn Fn([f64; 3]) -> f64>> = vec![
            Box::new(|r| 1.0 + 0.1 * r[0]),
            Box::new(|r| r[0] * r[1] + 0.5),
            Box::new(|r| r[2] * r[2] - r[0] + 2.0),
            Box::new(|r| (0.3 * r[0] + 0.2 * r[1]).sin() + 1.5),
            Box::new(|r| r[0] + r[1] + r[2]),
        ];
        let mut rng = StdRng::seed_from_u64(10);
        let pos: Vec<[f64; 3]> = (0..n)
            .map(|_| [rng.random(), rng.random(), rng.random()])
            .collect();
        let fill = |pos: &Vec<[f64; 3]>| -> Vec<f64> {
            let mut a = vec![0.0; n * n];
            for e in 0..n {
                for (k, phi) in phis.iter().enumerate() {
                    a[e * n + k] = phi(pos[e]);
                }
            }
            a
        };
        let a = fill(&pos);
        let det = DiracDeterminant::build(&a, n);

        let e = 2;
        let h = 1e-6;
        // Analytic orbital gradients at pos[e] by FD of φ (exact enough).
        let mut gx = vec![0.0; n];
        let mut gy = vec![0.0; n];
        let mut gz = vec![0.0; n];
        for (k, phi) in phis.iter().enumerate() {
            for (d, g) in [&mut gx, &mut gy, &mut gz].into_iter().enumerate() {
                let mut rp = pos[e];
                rp[d] += h;
                let mut rm = pos[e];
                rm[d] -= h;
                g[k] = (phi(rp) - phi(rm)) / (2.0 * h);
            }
        }
        let grad = det.grad_log(e, &gx, &gy, &gz);

        // FD of log|det| w.r.t. electron e.
        for d in 0..3 {
            let mut pp = pos.clone();
            pp[e][d] += h;
            let mut pm = pos.clone();
            pm[e][d] -= h;
            let lp = DiracDeterminant::build(&fill(&pp), n).log_det();
            let lm = DiracDeterminant::build(&fill(&pm), n).log_det();
            let fd = (lp - lm) / (2.0 * h);
            assert!((grad[d] - fd).abs() < 1e-5, "d={d}: {} vs {fd}", grad[d]);
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_rejected() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        let _ = DiracDeterminant::build(&a, 2);
    }
}
