//! `miniqmc` — the QMC substrate surrounding the B-spline kernels.
//!
//! Rust analogue of the miniQMC mini-app the paper uses for prototyping
//! and benchmarking (Sec. IV): everything a walker touches besides the
//! SPO engines themselves —
//!
//! * [`lattice`] — periodic cells, minimum image, the graphite supercells
//!   of the CORAL benchmark;
//! * [`particleset`] — SoA particle storage with AoS accessors (the
//!   migration trick of Sec. V-A);
//! * [`distance`] — electron–electron / electron–ion distance tables in
//!   both the AoS baseline and SoA optimized forms;
//! * [`jastrow`] — B-spline radial functors, one-/two-body Jastrow with
//!   O(N) particle-by-particle ratios;
//! * [`determinant`] — Slater determinants with Sherman–Morrison O(N²)
//!   updates (Eqs. 2–4);
//! * [`spo`] — the SPOSet bridging Cartesian QMC and fractional-grid
//!   B-splines (gradient/Hessian pull-back for general cells);
//! * [`wavefunction`] — `ΨT = exp(J1+J2)·D↑·D↓` with the pbyp move
//!   contract;
//! * [`drivers`] — a VMC driver with the per-category profiling used to
//!   reproduce Tables II/III;
//! * [`campaign`] — the checkpointable DMC campaign layer (see below);
//! * [`synthetic`] — synthetic orbitals and the CORAL system builder
//!   (see DESIGN.md for the data substitution rationale).
//!
//! # Campaign layer
//!
//! [`campaign`] turns the DMC building blocks into an interruptible
//! production run: a [`campaign::Campaign`] couples the
//! [`drivers::dmc::DmcPopulation`] branching loop to a
//! [`campaign::Propagator`] holding per-walker configurations, records
//! a per-generation statistics ring, and checkpoints the **full resume
//! closure** to disk.
//!
//! * **Checkpoint format** — std-only framed files
//!   (`magic · version · length · payload · CRC-32`), one per
//!   checkpointed generation, written to a temp sibling and published
//!   with an atomic rename; recovery scans newest-first and falls back
//!   past any frame whose CRC does not verify. All floats travel as
//!   IEEE-754 bit patterns, so a round-trip is bit-exact. See
//!   [`campaign::checkpoint`].
//! * **Resume-equivalence contract** — a campaign restored from any
//!   checkpoint continues *bit-identically* to the uninterrupted run:
//!   RNG streams are serialized as exact xoshiro256** state, and the
//!   wavefunction propagator rebuilds every incremental cache from
//!   electron positions at each generation start, so no
//!   Sherman–Morrison rounding history leaks across the boundary.
//!   Proven by `tests/integration_campaign.rs` over seeds ×
//!   populations × checkpoint intervals × kill points.
//! * **Fault-injection knobs** — [`campaign::CampaignFaultPlan`]
//!   scripts kill-after-generation-N, a torn write truncating the
//!   n-th checkpoint at byte K, and single-bit corruption; storage
//!   faults damage the bytes after framing, exactly as a failing disk
//!   would, and must be caught by the CRC scan.
//!
//! # Quick example
//!
//! ```
//! use miniqmc::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A 4-carbon graphite cell, 16 electrons, 8 orbitals per spin.
//! let sys = CoralSystem::new(1, 1, 1, (10, 10, 12));
//! let spo = SpoSet::new(sys.orbitals::<f64>(42), sys.lattice);
//! let electrons = random_electrons(
//!     sys.lattice, sys.n_electrons(), &mut StdRng::seed_from_u64(1));
//! let rc = sys.lattice.wigner_seitz_radius() * 0.9;
//! let mut wf = TrialWaveFunction::new(
//!     spo, &sys.ions, electrons,
//!     BsplineFunctor::rpa_like(0.3, 1.0, rc, 20),
//!     BsplineFunctor::rpa_like(0.5, 1.2, rc, 20));
//! let result = run_vmc(&mut wf, &VmcConfig { n_steps: 2, step_size: 0.4, seed: 7 });
//! assert!(result.acceptance > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// The 4-point tensor-product kernels use fixed-trip indexed loops on
// purpose (mirrors the paper's loop structure and vectorizes cleanly).
#![allow(clippy::needless_range_loop)]

pub mod campaign;
pub mod determinant;
pub mod distance;
pub mod drivers;
pub mod jastrow;
pub mod lattice;
pub mod particleset;
pub mod spo;
pub mod synthetic;
pub mod wavefunction;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::campaign::{
        Campaign, CampaignConfig, CampaignFaultPlan, CheckpointStore, GenStats, Propagator,
        RunOutcome, SyntheticPropagator, WalkerPropagator,
    };
    pub use crate::determinant::DiracDeterminant;
    pub use crate::distance::aos::{DistanceTableAAAoS, DistanceTableABAoS};
    pub use crate::distance::soa::{DistanceTableAA, DistanceTableAB};
    pub use crate::drivers::{
        coulomb_ee, coulomb_ei, kinetic_energy, run_vmc, Category, DmcConfig,
        DmcPopulation, LocalEnergy, ProfileReport, Timers, VmcConfig,
    };
    pub use crate::jastrow::{BsplineFunctor, JastrowDerivs, OneBodyJastrow, TwoBodyJastrow};
    pub use crate::lattice::{graphite_supercell, Lattice};
    pub use crate::particleset::{random_electrons, ParticleSet};
    pub use crate::spo::SpoSet;
    pub use crate::synthetic::{random_coefficients, synthetic_orbitals, CoralSystem};
    pub use crate::wavefunction::{EvalMode, TrialWaveFunction};
}
