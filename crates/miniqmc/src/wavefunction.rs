//! The Slater–Jastrow trial wavefunction
//! `ΨT = exp(J1 + J2) · D↑ · D↓` (paper Eq. 1) and its
//! particle-by-particle move contract.
//!
//! Electrons are ordered spin-up first (`0..N`) then spin-down
//! (`N..2N`); both determinants share one SPO set (paper: `D↓ = D↑`).
//! Every method charges its work to the profiling categories so the VMC
//! driver reproduces the Table II/III accounting.

use crate::determinant::DiracDeterminant;
use crate::distance::soa::{DistanceTableAA, DistanceTableAB};
use crate::drivers::profile::{Category, Timers};
use crate::jastrow::{BsplineFunctor, JastrowDerivs, OneBodyJastrow, TwoBodyJastrow};
use crate::particleset::ParticleSet;
use crate::spo::SpoSet;
use einspline::Real;

/// Which SPO path the particle-by-particle move protocol runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// The single-electron fast path (default): a V-only engine call
    /// for the determinant ratio on propose
    /// ([`SpoSet::evaluate_v_one`], grid locate + basis weights cached
    /// in the walker's move context), then a cached-weights VGL on
    /// accept ([`SpoSet::evaluate_vgl_one`]) for the moved electron's
    /// drift gradient and log-Laplacian
    /// ([`TrialWaveFunction::last_move_derivs`]).
    #[default]
    PerElectron,
    /// The pre-fast-path behavior: a full VGH evaluation on propose
    /// (only the values are consumed), nothing on accept. Kept for
    /// A/B comparison (`QMC_ALL_ELECTRON=1` in the examples).
    AllElectron,
}

/// Slater–Jastrow trial wavefunction over a two-spin electron set.
///
/// `T` is the orbital storage/kernel precision only. Every
/// wavefunction-level quantity — determinant builds and ratios
/// (`phi_new`), `log ΨT`, drift gradients, kinetic Laplacians
/// ([`Self::log_derivs`]) — is accumulated in `T::Accum = f64`
/// regardless of `T`, so a mixed-precision run (f32 tables) changes
/// memory bandwidth, not observable accuracy beyond the documented
/// orbital error budget (`bspline::precision`).
pub struct TrialWaveFunction<T: Real> {
    spo: SpoSet<T>,
    electrons: ParticleSet,
    dist_ee: DistanceTableAA,
    dist_ei: DistanceTableAB,
    dets: [DiracDeterminant; 2],
    j1: OneBodyJastrow,
    j2: TwoBodyJastrow,
    n_per_spin: usize,
    /// Scratch: proposed orbital values (f64) for the determinant.
    phi_new: Vec<f64>,
    /// Pending move bookkeeping.
    pending: Option<(usize, [f64; 3], f64)>,
    log_psi: f64,
    /// Which SPO path the move protocol runs (per-electron fast path by
    /// default).
    mode: EvalMode,
    /// `(iel, ∇ ln|D|, ∇² ln|D|)` of the moved electron, from the
    /// cached-weights VGL of the last accepted per-electron move.
    last_move_derivs: Option<(usize, [f64; 3], f64)>,
    /// Timers.
    pub timers: Timers,
}

impl<T: Real<Accum = f64>> TrialWaveFunction<T> {
    /// Assemble the wavefunction. `electrons.len()` must be `2 ×
    /// spo.n_orbitals()`.
    pub fn new(
        mut spo: SpoSet<T>,
        ions: &ParticleSet,
        electrons: ParticleSet,
        j1_functor: BsplineFunctor,
        j2_functor: BsplineFunctor,
    ) -> Self {
        let n_per_spin = spo.n_orbitals();
        assert_eq!(
            electrons.len(),
            2 * n_per_spin,
            "need 2N electrons for N orbitals"
        );
        let n_el = electrons.len();
        let dist_ee = DistanceTableAA::new(&electrons);
        let dist_ei = DistanceTableAB::new(ions, &electrons);

        // Build both spin determinants from SPO values, one batched
        // multi-electron evaluation per spin.
        let mut build_det = |spin: usize| -> DiracDeterminant {
            let rs = Self::spin_positions(&electrons, spin, n_per_spin);
            let rows = spo.evaluate_v_batch(&rs);
            let mut a = vec![0.0; n_per_spin * n_per_spin];
            for (e, row) in rows.iter().enumerate() {
                a[e * n_per_spin..(e + 1) * n_per_spin]
                    .copy_from_slice(&row.v[..n_per_spin]);
            }
            DiracDeterminant::build(&a, n_per_spin)
        };
        let dets = [build_det(0), build_det(1)];

        let j1 = OneBodyJastrow::new(j1_functor, n_el);
        let j2 = TwoBodyJastrow::new(j2_functor, n_el);

        let mut wf = Self {
            spo,
            electrons,
            dist_ee,
            dist_ei,
            dets,
            j1,
            j2,
            n_per_spin,
            phi_new: vec![0.0; n_per_spin],
            pending: None,
            log_psi: 0.0,
            mode: EvalMode::default(),
            last_move_derivs: None,
            timers: Timers::new(),
        };
        wf.evaluate_log();
        wf
    }

    #[inline]
    /// N electrons.
    pub fn n_electrons(&self) -> usize {
        self.electrons.len()
    }

    #[inline]
    /// Electrons.
    pub fn electrons(&self) -> &ParticleSet {
        &self.electrons
    }

    #[inline]
    /// Log psi.
    pub fn log_psi(&self) -> f64 {
        self.log_psi
    }

    #[inline]
    /// The active SPO move path.
    pub fn eval_mode(&self) -> EvalMode {
        self.mode
    }

    /// Select the SPO move path (defaults to [`EvalMode::PerElectron`]).
    pub fn set_eval_mode(&mut self, mode: EvalMode) {
        self.mode = mode;
    }

    /// Overwrite every electron position (campaign restore / branching
    /// copy). All incremental caches become stale; callers must run
    /// [`TrialWaveFunction::evaluate_log`] — which rebuilds distance
    /// tables, Jastrow sums and determinants from positions alone —
    /// before the next per-electron move. That full rebuild is what
    /// makes the wavefunction state a pure function of the positions
    /// written here (the campaign layer's resume-equivalence contract).
    pub fn set_electron_positions(&mut self, pos: &[[f64; 3]]) {
        assert_eq!(pos.len(), self.electrons.len(), "electron count mismatch");
        for (i, &r) in pos.iter().enumerate() {
            self.electrons.set(i, r);
        }
    }

    /// `(iel, ∇ᵢ ln|D|, ∇²ᵢ ln|D|)` of the moved electron at its *new*
    /// position, computed on the last accepted move from the
    /// cached-weights VGL (accept-side of the per-electron protocol)
    /// against the post-accept determinant inverse. `None` before the
    /// first accept and in [`EvalMode::AllElectron`].
    pub fn last_move_derivs(&self) -> Option<(usize, [f64; 3], f64)> {
        self.last_move_derivs
    }

    fn spin_of(&self, iel: usize) -> (usize, usize) {
        (iel / self.n_per_spin, iel % self.n_per_spin)
    }

    /// Positions of one spin's electrons, in determinant row order.
    fn spin_positions(
        electrons: &ParticleSet,
        spin: usize,
        n_per_spin: usize,
    ) -> Vec<[f64; 3]> {
        (0..n_per_spin)
            .map(|e| electrons.get(spin * n_per_spin + e))
            .collect()
    }

    /// Full recompute of `log |ΨT|` (and internal state).
    pub fn evaluate_log(&mut self) -> f64 {
        let n_per_spin = self.n_per_spin;

        let (electrons, dist_ee, dist_ei, spo, dets, j1, j2, timers) = (
            &self.electrons,
            &mut self.dist_ee,
            &mut self.dist_ei,
            &mut self.spo,
            &mut self.dets,
            &mut self.j1,
            &mut self.j2,
            &mut self.timers,
        );

        timers.time(Category::Distance, || {
            dist_ee.rebuild(electrons);
            dist_ei.rebuild(electrons);
        });

        for spin in 0..2 {
            let rs = Self::spin_positions(electrons, spin, n_per_spin);
            let rows = timers.time(Category::Bspline, || spo.evaluate_v_batch(&rs));
            let mut a = vec![0.0; n_per_spin * n_per_spin];
            for (e, row) in rows.iter().enumerate() {
                a[e * n_per_spin..(e + 1) * n_per_spin]
                    .copy_from_slice(&row.v[..n_per_spin]);
            }
            timers.time(Category::Determinant, || {
                dets[spin] = DiracDeterminant::build(&a, n_per_spin);
            });
        }

        let mut derivs = JastrowDerivs::zeros(self.electrons.len());
        let (log_j2, log_j1) = timers.time(Category::Jastrow, || {
            (
                j2.evaluate_log(dist_ee, &mut derivs),
                j1.evaluate_log(dist_ei, &mut derivs),
            )
        });

        self.log_psi =
            log_j1 + log_j2 + self.dets[0].log_det() + self.dets[1].log_det();
        self.pending = None;
        self.last_move_derivs = None;
        self.log_psi
    }

    /// All-electron `∇ᵢ ln|Ψ|` and `∇²ᵢ ln|Ψ|` — the drift-diffusion
    /// sweep: drift vectors for proposal moves and the input of the
    /// kinetic-energy estimator. One batched VGH evaluation per spin
    /// ([`SpoSet::evaluate_vgl_batch`]) replaces the per-electron engine
    /// calls; determinant and Jastrow contributions are combined per
    /// electron.
    ///
    /// The internal state (determinant inverses, distance tables) must
    /// be consistent with the current electron positions, i.e. call this
    /// between sweeps, not with a move pending.
    pub fn log_derivs(&mut self) -> JastrowDerivs {
        assert!(self.pending.is_none(), "log_derivs with a move pending");
        let n_per_spin = self.n_per_spin;
        let n_el = self.electrons.len();
        let (electrons, dist_ee, dist_ei, spo, dets, j1, j2, timers) = (
            &self.electrons,
            &mut self.dist_ee,
            &mut self.dist_ei,
            &mut self.spo,
            &self.dets,
            &mut self.j1,
            &mut self.j2,
            &mut self.timers,
        );

        timers.time(Category::Distance, || {
            dist_ee.rebuild(electrons);
            dist_ei.rebuild(electrons);
        });
        let mut derivs = JastrowDerivs::zeros(n_el);
        timers.time(Category::Jastrow, || {
            j2.evaluate_log(dist_ee, &mut derivs);
            j1.evaluate_log(dist_ei, &mut derivs);
        });

        for spin in 0..2 {
            let rs = Self::spin_positions(electrons, spin, n_per_spin);
            let rows = timers.time(Category::Bspline, || spo.evaluate_vgl_batch(&rs));
            for (e, row) in rows.iter().enumerate() {
                let (g, l) = timers.time(Category::Determinant, || {
                    crate::drivers::observables::det_log_derivs(
                        &dets[spin],
                        e,
                        &row.gx,
                        &row.gy,
                        &row.gz,
                        &row.lap,
                    )
                });
                let iel = spin * n_per_spin + e;
                for d in 0..3 {
                    derivs.grad[iel][d] += g[d];
                }
                derivs.lap[iel] += l;
            }
        }
        derivs
    }

    /// Propose moving electron `iel` to `rnew`; returns the wavefunction
    /// ratio `ΨT(R′)/ΨT(R)`.
    ///
    /// In [`EvalMode::PerElectron`] (the default) the SPO evaluation is
    /// a V-only call through the walker's move context — the ratio test
    /// needs nothing but values, and the locate/weights it computes are
    /// reused by the accept-side VGL at the same position. In
    /// [`EvalMode::AllElectron`] it is the legacy full-VGH call.
    pub fn ratio(&mut self, iel: usize, rnew: [f64; 3]) -> f64 {
        let (spin, e) = self.spin_of(iel);
        let n = self.n_per_spin;
        let mode = self.mode;

        let (electrons, dist_ee, dist_ei, spo, dets, j1, j2, timers, phi_new) = (
            &self.electrons,
            &mut self.dist_ee,
            &mut self.dist_ei,
            &mut self.spo,
            &mut self.dets,
            &mut self.j1,
            &mut self.j2,
            &mut self.timers,
            &mut self.phi_new,
        );

        timers.time(Category::Distance, || {
            dist_ee.propose(electrons, iel, rnew);
            dist_ei.propose(iel, rnew);
        });

        let det_ratio = {
            match mode {
                EvalMode::PerElectron => {
                    let v = timers.time(Category::Bspline, || spo.evaluate_v_one(rnew));
                    phi_new.copy_from_slice(v);
                }
                EvalMode::AllElectron => {
                    let out = timers.time(Category::Bspline, || spo.evaluate_vgl(rnew));
                    phi_new.copy_from_slice(&out.v[..n]);
                }
            }
            timers.time(Category::Determinant, || dets[spin].ratio(e, phi_new))
        };

        let (r2, r1) = timers.time(Category::Jastrow, || {
            (j2.ratio(dist_ee, iel), j1.ratio(dist_ei, iel))
        });

        let ratio = det_ratio * r1 * r2;
        self.pending = Some((iel, rnew, ratio));
        ratio
    }

    /// Commit the pending move. In [`EvalMode::PerElectron`] this also
    /// runs the accept-side VGL for the moved electron — a cache hit on
    /// the locate/weights the propose-side [`Self::ratio`] stored — and
    /// records its drift gradient / log-Laplacian against the
    /// post-accept determinant inverse ([`Self::last_move_derivs`]).
    pub fn accept(&mut self, iel: usize) {
        let Some((p_iel, rnew, ratio)) = self.pending.take() else {
            panic!("accept without a pending ratio");
        };
        assert_eq!(iel, p_iel, "accept must match the proposed electron");
        let (spin, e) = self.spin_of(iel);

        let (dist_ee, dist_ei, dets, j1, j2, timers, phi_new) = (
            &mut self.dist_ee,
            &mut self.dist_ei,
            &mut self.dets,
            &mut self.j1,
            &mut self.j2,
            &mut self.timers,
            &self.phi_new,
        );

        timers.time(Category::Distance, || {
            dist_ee.accept(iel);
            dist_ei.accept(iel);
        });
        timers.time(Category::Determinant, || dets[spin].accept(e, phi_new));
        timers.time(Category::Jastrow, || {
            j2.accept(iel);
            j1.accept(iel);
        });
        self.electrons.set(iel, rnew);
        self.log_psi += ratio.abs().ln();

        if self.mode == EvalMode::PerElectron {
            let (spo, dets, timers) = (&mut self.spo, &self.dets, &mut self.timers);
            // Accept-side VGL: same position as the propose-side V, so
            // the move context's locate/weights are reused (this is the
            // V→VGL pair the fast path exists for). The determinant
            // inverse is already rank-1 updated, so the derivatives are
            // those of the *new* configuration.
            let row = timers.time(Category::Bspline, || spo.evaluate_vgl_one(rnew));
            let (g, l) = timers.time(Category::Determinant, || {
                crate::drivers::observables::det_log_derivs(
                    &dets[spin],
                    e,
                    &row.gx,
                    &row.gy,
                    &row.gz,
                    &row.lap,
                )
            });
            self.last_move_derivs = Some((iel, g, l));
        }
    }

    /// Discard the pending move.
    pub fn reject(&mut self) {
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particleset::random_electrons;
    use crate::synthetic::CoralSystem;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A small graphite-like system: 1×1×1 cell (4 carbons, 16
    /// electrons, 8 orbitals/spin), coarse grid.
    fn small_system(seed: u64) -> TrialWaveFunction<f64> {
        let sys = CoralSystem::new(1, 1, 1, (10, 10, 12));
        let coefs = sys.orbitals::<f64>(seed);
        let spo = SpoSet::new(coefs, sys.lattice);
        let electrons = random_electrons(
            sys.lattice,
            sys.n_electrons(),
            &mut StdRng::seed_from_u64(seed + 1),
        );
        let rc = sys.lattice.wigner_seitz_radius() * 0.9;
        let j1 = BsplineFunctor::rpa_like(0.3, 1.0, rc, 24);
        let j2 = BsplineFunctor::rpa_like(0.5, 1.2, rc, 24);
        TrialWaveFunction::new(spo, &sys.ions, electrons, j1, j2)
    }

    #[test]
    fn builds_and_is_finite() {
        let wf = small_system(3);
        assert_eq!(wf.n_electrons(), 16);
        assert!(wf.log_psi().is_finite());
    }

    #[test]
    fn ratio_matches_full_recompute() {
        let mut wf = small_system(5);
        let log0 = wf.log_psi();
        let iel = 7;
        let rnew = {
            let r = wf.electrons().get(iel);
            [r[0] + 0.21, r[1] - 0.13, r[2] + 0.08]
        };
        let ratio = wf.ratio(iel, rnew);
        wf.accept(iel);
        let log1 = wf.evaluate_log();
        assert!(
            ((log1 - log0) - ratio.abs().ln()).abs() < 1e-7,
            "Δlog={} vs ln|ratio|={}",
            log1 - log0,
            ratio.abs().ln()
        );
    }

    #[test]
    fn reject_leaves_state_unchanged() {
        let mut wf = small_system(7);
        let log0 = wf.log_psi();
        let _ = wf.ratio(3, [0.5, 0.5, 0.5]);
        wf.reject();
        let log1 = wf.evaluate_log();
        assert!((log1 - log0).abs() < 1e-9);
    }

    #[test]
    fn sweep_keeps_incremental_log_consistent() {
        let mut wf = small_system(11);
        let mut rng = StdRng::seed_from_u64(101);
        let lat = *wf.electrons().lattice();
        let mut accepted = 0;
        for step in 0..2 * wf.n_electrons() {
            let iel = step % wf.n_electrons();
            let r = wf.electrons().get(iel);
            let d = 0.4;
            let rnew = lat.wrap([
                r[0] + d * (rng.random::<f64>() - 0.5),
                r[1] + d * (rng.random::<f64>() - 0.5),
                r[2] + d * (rng.random::<f64>() - 0.5),
            ]);
            let ratio = wf.ratio(iel, rnew);
            if ratio * ratio > rng.random::<f64>() {
                wf.accept(iel);
                accepted += 1;
            } else {
                wf.reject();
            }
        }
        assert!(accepted > 0, "some moves should be accepted");
        let tracked = wf.log_psi();
        let fresh = wf.evaluate_log();
        assert!(
            (tracked - fresh).abs() < 1e-6,
            "tracked {tracked} vs fresh {fresh}"
        );
    }

    #[test]
    fn log_derivs_gradient_matches_finite_difference_of_log_psi() {
        let mut wf = small_system(41);
        let derivs = wf.log_derivs();
        assert_eq!(derivs.grad.len(), wf.n_electrons());
        let h = 1e-5;
        for iel in [0usize, 9] {
            let r0 = wf.electrons().get(iel);
            for d in 0..3 {
                let mut rp = r0;
                rp[d] += h;
                let ratio_p = wf.ratio(iel, rp);
                wf.reject();
                let mut rm = r0;
                rm[d] -= h;
                let ratio_m = wf.ratio(iel, rm);
                wf.reject();
                let fd = (ratio_p.abs().ln() - ratio_m.abs().ln()) / (2.0 * h);
                assert!(
                    (derivs.grad[iel][d] - fd).abs() < 1e-4,
                    "iel={iel} d={d}: {} vs {fd}",
                    derivs.grad[iel][d]
                );
            }
        }
    }

    #[test]
    fn log_derivs_laplacian_matches_finite_difference() {
        let mut wf = small_system(43);
        let derivs = wf.log_derivs();
        let h = 2e-4;
        let iel = 3;
        let r0 = wf.electrons().get(iel);
        let mut lap_fd = 0.0;
        for d in 0..3 {
            let mut rp = r0;
            rp[d] += h;
            let ratio_p = wf.ratio(iel, rp);
            wf.reject();
            let mut rm = r0;
            rm[d] -= h;
            let ratio_m = wf.ratio(iel, rm);
            wf.reject();
            lap_fd += (ratio_p.abs().ln() + ratio_m.abs().ln()) / (h * h);
        }
        let rel = (derivs.lap[iel] - lap_fd).abs() / lap_fd.abs().max(1.0);
        assert!(rel < 5e-2, "{} vs {lap_fd}", derivs.lap[iel]);
    }

    #[test]
    fn timers_populated_by_moves() {
        let mut wf = small_system(13);
        let _ = wf.ratio(0, [0.3, 0.3, 0.3]);
        wf.accept(0);
        for cat in [
            Category::Bspline,
            Category::Distance,
            Category::Jastrow,
            Category::Determinant,
        ] {
            assert!(
                wf.timers.get(cat) > std::time::Duration::ZERO,
                "{cat} timer empty"
            );
        }
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn accept_without_ratio_panics() {
        let mut wf = small_system(17);
        wf.accept(0);
    }

    /// The per-electron fast path (V-only ratio, cached-weights VGL on
    /// accept) and the legacy all-electron path must agree on every
    /// ratio and on the tracked log over a full sweep. The two paths run
    /// different kernels on propose (V vs VGH), whose value streams
    /// agree to rounding, not bit-for-bit — hence the tight-but-not-zero
    /// tolerances.
    #[test]
    fn per_electron_and_all_electron_modes_agree() {
        let mut fast = small_system(23);
        let mut legacy = small_system(23);
        legacy.set_eval_mode(EvalMode::AllElectron);
        assert_eq!(fast.eval_mode(), EvalMode::PerElectron);
        assert_eq!(legacy.eval_mode(), EvalMode::AllElectron);

        let mut rng = StdRng::seed_from_u64(77);
        let lat = *fast.electrons().lattice();
        for iel in 0..fast.n_electrons() {
            let r = fast.electrons().get(iel);
            let d = 0.4;
            let rnew = lat.wrap([
                r[0] + d * (rng.random::<f64>() - 0.5),
                r[1] + d * (rng.random::<f64>() - 0.5),
                r[2] + d * (rng.random::<f64>() - 0.5),
            ]);
            let ra = fast.ratio(iel, rnew);
            let rb = legacy.ratio(iel, rnew);
            assert!(
                (ra - rb).abs() <= 1e-9 * ra.abs().max(1.0),
                "iel={iel}: fast ratio {ra} vs legacy {rb}"
            );
            if iel % 2 == 0 {
                fast.accept(iel);
                legacy.accept(iel);
            } else {
                fast.reject();
                legacy.reject();
            }
        }
        assert!((fast.log_psi() - legacy.log_psi()).abs() < 1e-8);
        assert!(fast.last_move_derivs().is_some());
        assert!(legacy.last_move_derivs().is_none());
    }

    /// The accept-side cached-weights VGL must give the same determinant
    /// derivatives as a fresh scalar evaluation against the post-accept
    /// inverse — bit-identical, since `vgh_one` reuses the exact
    /// locate/weights the scalar path recomputes.
    #[test]
    fn last_move_derivs_match_fresh_vgl_against_post_accept_inverse() {
        let mut wf = small_system(19);
        assert!(wf.last_move_derivs().is_none());
        let iel = 5;
        let rnew = {
            let r = wf.electrons().get(iel);
            [r[0] + 0.17, r[1] - 0.09, r[2] + 0.12]
        };
        let _ = wf.ratio(iel, rnew);
        wf.accept(iel);
        let (m_iel, g, l) = wf.last_move_derivs().unwrap();
        assert_eq!(m_iel, iel);

        let (spin, e) = wf.spin_of(iel);
        let row = wf.spo.evaluate_vgl(rnew);
        let (g2, l2) = crate::drivers::observables::det_log_derivs(
            &wf.dets[spin],
            e,
            &row.gx,
            &row.gy,
            &row.gz,
            &row.lap,
        );
        assert_eq!(g, g2);
        assert_eq!(l, l2);

        // A rejected move leaves the last accepted derivs in place; a
        // full recompute clears them.
        let _ = wf.ratio(iel, [0.1, 0.2, 0.3]);
        wf.reject();
        assert!(wf.last_move_derivs().is_some());
        wf.evaluate_log();
        assert!(wf.last_move_derivs().is_none());
    }
}
