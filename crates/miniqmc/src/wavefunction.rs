//! The Slater–Jastrow trial wavefunction
//! `ΨT = exp(J1 + J2) · D↑ · D↓` (paper Eq. 1) and its
//! particle-by-particle move contract.
//!
//! Electrons are ordered spin-up first (`0..N`) then spin-down
//! (`N..2N`); both determinants share one SPO set (paper: `D↓ = D↑`).
//! Every method charges its work to the profiling categories so the VMC
//! driver reproduces the Table II/III accounting.

use crate::determinant::DiracDeterminant;
use crate::distance::soa::{DistanceTableAA, DistanceTableAB};
use crate::drivers::profile::{Category, Timers};
use crate::jastrow::{BsplineFunctor, JastrowDerivs, OneBodyJastrow, TwoBodyJastrow};
use crate::particleset::ParticleSet;
use crate::spo::SpoSet;
use einspline::Real;

/// Slater–Jastrow trial wavefunction over a two-spin electron set.
///
/// `T` is the orbital storage/kernel precision only. Every
/// wavefunction-level quantity — determinant builds and ratios
/// (`phi_new`), `log ΨT`, drift gradients, kinetic Laplacians
/// ([`Self::log_derivs`]) — is accumulated in `T::Accum = f64`
/// regardless of `T`, so a mixed-precision run (f32 tables) changes
/// memory bandwidth, not observable accuracy beyond the documented
/// orbital error budget (`bspline::precision`).
pub struct TrialWaveFunction<T: Real> {
    spo: SpoSet<T>,
    electrons: ParticleSet,
    dist_ee: DistanceTableAA,
    dist_ei: DistanceTableAB,
    dets: [DiracDeterminant; 2],
    j1: OneBodyJastrow,
    j2: TwoBodyJastrow,
    n_per_spin: usize,
    /// Scratch: proposed orbital values (f64) for the determinant.
    phi_new: Vec<f64>,
    /// Pending move bookkeeping.
    pending: Option<(usize, [f64; 3], f64)>,
    log_psi: f64,
    /// Timers.
    pub timers: Timers,
}

impl<T: Real<Accum = f64>> TrialWaveFunction<T> {
    /// Assemble the wavefunction. `electrons.len()` must be `2 ×
    /// spo.n_orbitals()`.
    pub fn new(
        mut spo: SpoSet<T>,
        ions: &ParticleSet,
        electrons: ParticleSet,
        j1_functor: BsplineFunctor,
        j2_functor: BsplineFunctor,
    ) -> Self {
        let n_per_spin = spo.n_orbitals();
        assert_eq!(
            electrons.len(),
            2 * n_per_spin,
            "need 2N electrons for N orbitals"
        );
        let n_el = electrons.len();
        let dist_ee = DistanceTableAA::new(&electrons);
        let dist_ei = DistanceTableAB::new(ions, &electrons);

        // Build both spin determinants from SPO values, one batched
        // multi-electron evaluation per spin.
        let mut build_det = |spin: usize| -> DiracDeterminant {
            let rs = Self::spin_positions(&electrons, spin, n_per_spin);
            let rows = spo.evaluate_v_batch(&rs);
            let mut a = vec![0.0; n_per_spin * n_per_spin];
            for (e, row) in rows.iter().enumerate() {
                a[e * n_per_spin..(e + 1) * n_per_spin]
                    .copy_from_slice(&row.v[..n_per_spin]);
            }
            DiracDeterminant::build(&a, n_per_spin)
        };
        let dets = [build_det(0), build_det(1)];

        let j1 = OneBodyJastrow::new(j1_functor, n_el);
        let j2 = TwoBodyJastrow::new(j2_functor, n_el);

        let mut wf = Self {
            spo,
            electrons,
            dist_ee,
            dist_ei,
            dets,
            j1,
            j2,
            n_per_spin,
            phi_new: vec![0.0; n_per_spin],
            pending: None,
            log_psi: 0.0,
            timers: Timers::new(),
        };
        wf.evaluate_log();
        wf
    }

    #[inline]
    /// N electrons.
    pub fn n_electrons(&self) -> usize {
        self.electrons.len()
    }

    #[inline]
    /// Electrons.
    pub fn electrons(&self) -> &ParticleSet {
        &self.electrons
    }

    #[inline]
    /// Log psi.
    pub fn log_psi(&self) -> f64 {
        self.log_psi
    }

    fn spin_of(&self, iel: usize) -> (usize, usize) {
        (iel / self.n_per_spin, iel % self.n_per_spin)
    }

    /// Positions of one spin's electrons, in determinant row order.
    fn spin_positions(
        electrons: &ParticleSet,
        spin: usize,
        n_per_spin: usize,
    ) -> Vec<[f64; 3]> {
        (0..n_per_spin)
            .map(|e| electrons.get(spin * n_per_spin + e))
            .collect()
    }

    /// Full recompute of `log |ΨT|` (and internal state).
    pub fn evaluate_log(&mut self) -> f64 {
        let n_per_spin = self.n_per_spin;

        let (electrons, dist_ee, dist_ei, spo, dets, j1, j2, timers) = (
            &self.electrons,
            &mut self.dist_ee,
            &mut self.dist_ei,
            &mut self.spo,
            &mut self.dets,
            &mut self.j1,
            &mut self.j2,
            &mut self.timers,
        );

        timers.time(Category::Distance, || {
            dist_ee.rebuild(electrons);
            dist_ei.rebuild(electrons);
        });

        for spin in 0..2 {
            let rs = Self::spin_positions(electrons, spin, n_per_spin);
            let rows = timers.time(Category::Bspline, || spo.evaluate_v_batch(&rs));
            let mut a = vec![0.0; n_per_spin * n_per_spin];
            for (e, row) in rows.iter().enumerate() {
                a[e * n_per_spin..(e + 1) * n_per_spin]
                    .copy_from_slice(&row.v[..n_per_spin]);
            }
            timers.time(Category::Determinant, || {
                dets[spin] = DiracDeterminant::build(&a, n_per_spin);
            });
        }

        let mut derivs = JastrowDerivs::zeros(self.electrons.len());
        let (log_j2, log_j1) = timers.time(Category::Jastrow, || {
            (
                j2.evaluate_log(dist_ee, &mut derivs),
                j1.evaluate_log(dist_ei, &mut derivs),
            )
        });

        self.log_psi =
            log_j1 + log_j2 + self.dets[0].log_det() + self.dets[1].log_det();
        self.pending = None;
        self.log_psi
    }

    /// All-electron `∇ᵢ ln|Ψ|` and `∇²ᵢ ln|Ψ|` — the drift-diffusion
    /// sweep: drift vectors for proposal moves and the input of the
    /// kinetic-energy estimator. One batched VGH evaluation per spin
    /// ([`SpoSet::evaluate_vgl_batch`]) replaces the per-electron engine
    /// calls; determinant and Jastrow contributions are combined per
    /// electron.
    ///
    /// The internal state (determinant inverses, distance tables) must
    /// be consistent with the current electron positions, i.e. call this
    /// between sweeps, not with a move pending.
    pub fn log_derivs(&mut self) -> JastrowDerivs {
        assert!(self.pending.is_none(), "log_derivs with a move pending");
        let n_per_spin = self.n_per_spin;
        let n_el = self.electrons.len();
        let (electrons, dist_ee, dist_ei, spo, dets, j1, j2, timers) = (
            &self.electrons,
            &mut self.dist_ee,
            &mut self.dist_ei,
            &mut self.spo,
            &self.dets,
            &mut self.j1,
            &mut self.j2,
            &mut self.timers,
        );

        timers.time(Category::Distance, || {
            dist_ee.rebuild(electrons);
            dist_ei.rebuild(electrons);
        });
        let mut derivs = JastrowDerivs::zeros(n_el);
        timers.time(Category::Jastrow, || {
            j2.evaluate_log(dist_ee, &mut derivs);
            j1.evaluate_log(dist_ei, &mut derivs);
        });

        for spin in 0..2 {
            let rs = Self::spin_positions(electrons, spin, n_per_spin);
            let rows = timers.time(Category::Bspline, || spo.evaluate_vgl_batch(&rs));
            for (e, row) in rows.iter().enumerate() {
                let (g, l) = timers.time(Category::Determinant, || {
                    crate::drivers::observables::det_log_derivs(
                        &dets[spin],
                        e,
                        &row.gx,
                        &row.gy,
                        &row.gz,
                        &row.lap,
                    )
                });
                let iel = spin * n_per_spin + e;
                for d in 0..3 {
                    derivs.grad[iel][d] += g[d];
                }
                derivs.lap[iel] += l;
            }
        }
        derivs
    }

    /// Propose moving electron `iel` to `rnew`; returns the wavefunction
    /// ratio `ΨT(R′)/ΨT(R)`.
    ///
    /// Uses the VGH kernel for the SPO evaluation (value + gradient, as
    /// the drift-diffusion phase of the paper does for graphite).
    pub fn ratio(&mut self, iel: usize, rnew: [f64; 3]) -> f64 {
        let (spin, e) = self.spin_of(iel);
        let n = self.n_per_spin;

        let (electrons, dist_ee, dist_ei, spo, dets, j1, j2, timers, phi_new) = (
            &self.electrons,
            &mut self.dist_ee,
            &mut self.dist_ei,
            &mut self.spo,
            &mut self.dets,
            &mut self.j1,
            &mut self.j2,
            &mut self.timers,
            &mut self.phi_new,
        );

        timers.time(Category::Distance, || {
            dist_ee.propose(electrons, iel, rnew);
            dist_ei.propose(iel, rnew);
        });

        let det_ratio = {
            let out = timers.time(Category::Bspline, || spo.evaluate_vgl(rnew));
            phi_new.copy_from_slice(&out.v[..n]);
            timers.time(Category::Determinant, || dets[spin].ratio(e, phi_new))
        };

        let (r2, r1) = timers.time(Category::Jastrow, || {
            (j2.ratio(dist_ee, iel), j1.ratio(dist_ei, iel))
        });

        let ratio = det_ratio * r1 * r2;
        self.pending = Some((iel, rnew, ratio));
        ratio
    }

    /// Commit the pending move.
    pub fn accept(&mut self, iel: usize) {
        let Some((p_iel, rnew, ratio)) = self.pending.take() else {
            panic!("accept without a pending ratio");
        };
        assert_eq!(iel, p_iel, "accept must match the proposed electron");
        let (spin, e) = self.spin_of(iel);

        let (dist_ee, dist_ei, dets, j1, j2, timers, phi_new) = (
            &mut self.dist_ee,
            &mut self.dist_ei,
            &mut self.dets,
            &mut self.j1,
            &mut self.j2,
            &mut self.timers,
            &self.phi_new,
        );

        timers.time(Category::Distance, || {
            dist_ee.accept(iel);
            dist_ei.accept(iel);
        });
        timers.time(Category::Determinant, || dets[spin].accept(e, phi_new));
        timers.time(Category::Jastrow, || {
            j2.accept(iel);
            j1.accept(iel);
        });
        self.electrons.set(iel, rnew);
        self.log_psi += ratio.abs().ln();
    }

    /// Discard the pending move.
    pub fn reject(&mut self) {
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particleset::random_electrons;
    use crate::synthetic::CoralSystem;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A small graphite-like system: 1×1×1 cell (4 carbons, 16
    /// electrons, 8 orbitals/spin), coarse grid.
    fn small_system(seed: u64) -> TrialWaveFunction<f64> {
        let sys = CoralSystem::new(1, 1, 1, (10, 10, 12));
        let coefs = sys.orbitals::<f64>(seed);
        let spo = SpoSet::new(coefs, sys.lattice);
        let electrons = random_electrons(
            sys.lattice,
            sys.n_electrons(),
            &mut StdRng::seed_from_u64(seed + 1),
        );
        let rc = sys.lattice.wigner_seitz_radius() * 0.9;
        let j1 = BsplineFunctor::rpa_like(0.3, 1.0, rc, 24);
        let j2 = BsplineFunctor::rpa_like(0.5, 1.2, rc, 24);
        TrialWaveFunction::new(spo, &sys.ions, electrons, j1, j2)
    }

    #[test]
    fn builds_and_is_finite() {
        let wf = small_system(3);
        assert_eq!(wf.n_electrons(), 16);
        assert!(wf.log_psi().is_finite());
    }

    #[test]
    fn ratio_matches_full_recompute() {
        let mut wf = small_system(5);
        let log0 = wf.log_psi();
        let iel = 7;
        let rnew = {
            let r = wf.electrons().get(iel);
            [r[0] + 0.21, r[1] - 0.13, r[2] + 0.08]
        };
        let ratio = wf.ratio(iel, rnew);
        wf.accept(iel);
        let log1 = wf.evaluate_log();
        assert!(
            ((log1 - log0) - ratio.abs().ln()).abs() < 1e-7,
            "Δlog={} vs ln|ratio|={}",
            log1 - log0,
            ratio.abs().ln()
        );
    }

    #[test]
    fn reject_leaves_state_unchanged() {
        let mut wf = small_system(7);
        let log0 = wf.log_psi();
        let _ = wf.ratio(3, [0.5, 0.5, 0.5]);
        wf.reject();
        let log1 = wf.evaluate_log();
        assert!((log1 - log0).abs() < 1e-9);
    }

    #[test]
    fn sweep_keeps_incremental_log_consistent() {
        let mut wf = small_system(11);
        let mut rng = StdRng::seed_from_u64(101);
        let lat = *wf.electrons().lattice();
        let mut accepted = 0;
        for step in 0..2 * wf.n_electrons() {
            let iel = step % wf.n_electrons();
            let r = wf.electrons().get(iel);
            let d = 0.4;
            let rnew = lat.wrap([
                r[0] + d * (rng.random::<f64>() - 0.5),
                r[1] + d * (rng.random::<f64>() - 0.5),
                r[2] + d * (rng.random::<f64>() - 0.5),
            ]);
            let ratio = wf.ratio(iel, rnew);
            if ratio * ratio > rng.random::<f64>() {
                wf.accept(iel);
                accepted += 1;
            } else {
                wf.reject();
            }
        }
        assert!(accepted > 0, "some moves should be accepted");
        let tracked = wf.log_psi();
        let fresh = wf.evaluate_log();
        assert!(
            (tracked - fresh).abs() < 1e-6,
            "tracked {tracked} vs fresh {fresh}"
        );
    }

    #[test]
    fn log_derivs_gradient_matches_finite_difference_of_log_psi() {
        let mut wf = small_system(41);
        let derivs = wf.log_derivs();
        assert_eq!(derivs.grad.len(), wf.n_electrons());
        let h = 1e-5;
        for iel in [0usize, 9] {
            let r0 = wf.electrons().get(iel);
            for d in 0..3 {
                let mut rp = r0;
                rp[d] += h;
                let ratio_p = wf.ratio(iel, rp);
                wf.reject();
                let mut rm = r0;
                rm[d] -= h;
                let ratio_m = wf.ratio(iel, rm);
                wf.reject();
                let fd = (ratio_p.abs().ln() - ratio_m.abs().ln()) / (2.0 * h);
                assert!(
                    (derivs.grad[iel][d] - fd).abs() < 1e-4,
                    "iel={iel} d={d}: {} vs {fd}",
                    derivs.grad[iel][d]
                );
            }
        }
    }

    #[test]
    fn log_derivs_laplacian_matches_finite_difference() {
        let mut wf = small_system(43);
        let derivs = wf.log_derivs();
        let h = 2e-4;
        let iel = 3;
        let r0 = wf.electrons().get(iel);
        let mut lap_fd = 0.0;
        for d in 0..3 {
            let mut rp = r0;
            rp[d] += h;
            let ratio_p = wf.ratio(iel, rp);
            wf.reject();
            let mut rm = r0;
            rm[d] -= h;
            let ratio_m = wf.ratio(iel, rm);
            wf.reject();
            lap_fd += (ratio_p.abs().ln() + ratio_m.abs().ln()) / (h * h);
        }
        let rel = (derivs.lap[iel] - lap_fd).abs() / lap_fd.abs().max(1.0);
        assert!(rel < 5e-2, "{} vs {lap_fd}", derivs.lap[iel]);
    }

    #[test]
    fn timers_populated_by_moves() {
        let mut wf = small_system(13);
        let _ = wf.ratio(0, [0.3, 0.3, 0.3]);
        wf.accept(0);
        for cat in [
            Category::Bspline,
            Category::Distance,
            Category::Jastrow,
            Category::Determinant,
        ] {
            assert!(
                wf.timers.get(cat) > std::time::Duration::ZERO,
                "{cat} timer empty"
            );
        }
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn accept_without_ratio_panics() {
        let mut wf = small_system(17);
        wf.accept(0);
    }
}
