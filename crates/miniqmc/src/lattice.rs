//! Periodic simulation cells: lattice vectors, Cartesian ↔ fractional
//! conversion, minimum-image displacements, and the graphite cells of the
//! paper's CORAL benchmark (Fig. 1b).

/// A periodic simulation cell defined by three row lattice vectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lattice {
    /// Row-major lattice vectors: `a[i]` is the i-th lattice vector.
    pub a: [[f64; 3]; 3],
    /// Inverse of the lattice matrix (rows), cached.
    inv: [[f64; 3]; 3],
    volume: f64,
}

fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

fn inv3(m: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let d = det3(m);
    assert!(d.abs() > 1e-300, "singular lattice");
    let inv_d = 1.0 / d;
    let mut c = [[0.0; 3]; 3];
    for i in 0..3 {
        for j in 0..3 {
            let (i1, i2) = ((i + 1) % 3, (i + 2) % 3);
            let (j1, j2) = ((j + 1) % 3, (j + 2) % 3);
            // Cofactor transpose (adjugate) / det.
            c[j][i] = (m[i1][j1] * m[i2][j2] - m[i1][j2] * m[i2][j1]) * inv_d;
        }
    }
    c
}

impl Lattice {
    /// Build from row lattice vectors.
    pub fn from_rows(a: [[f64; 3]; 3]) -> Self {
        let inv = inv3(&a);
        let volume = det3(&a).abs();
        Self { a, inv, volume }
    }

    /// Orthorhombic cell with edge lengths `lx, ly, lz`.
    pub fn orthorhombic(lx: f64, ly: f64, lz: f64) -> Self {
        Self::from_rows([[lx, 0.0, 0.0], [0.0, ly, 0.0], [0.0, 0.0, lz]])
    }

    /// Cubic cell of edge `l`.
    pub fn cubic(l: f64) -> Self {
        Self::orthorhombic(l, l, l)
    }

    /// Hexagonal cell: in-plane lattice constant `a`, height `c`.
    ///
    /// `a1 = a·(1,0,0)`, `a2 = a·(-1/2, √3/2, 0)`, `a3 = (0,0,c)` — the
    /// graphite primitive cell shape.
    pub fn hexagonal(a: f64, c: f64) -> Self {
        let h = 0.5 * 3f64.sqrt();
        Self::from_rows([[a, 0.0, 0.0], [-0.5 * a, h * a, 0.0], [0.0, 0.0, c]])
    }

    /// Cell volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.volume
    }

    /// Fractional → Cartesian: `r = u · A` (row vectors).
    #[inline]
    pub fn to_cart(&self, u: [f64; 3]) -> [f64; 3] {
        let mut r = [0.0; 3];
        for (b, row) in self.a.iter().enumerate() {
            for (alpha, ra) in r.iter_mut().enumerate() {
                *ra += u[b] * row[alpha];
            }
        }
        r
    }

    /// Cartesian → fractional: `u = r · A⁻¹`.
    #[inline]
    pub fn to_frac(&self, r: [f64; 3]) -> [f64; 3] {
        let mut u = [0.0; 3];
        for (b, row) in self.inv.iter().enumerate() {
            for (beta, ub) in u.iter_mut().enumerate() {
                *ub += r[b] * row[beta];
            }
        }
        u
    }

    /// The Cartesian→fractional Jacobian `G = A⁻¹` (for gradient/Hessian
    /// transforms of spline outputs evaluated in fractional coordinates:
    /// `∇ᵣ = G ∇ᵤ`, `Hᵣ = G Hᵤ Gᵀ`).
    #[inline]
    pub fn jacobian(&self) -> [[f64; 3]; 3] {
        self.inv
    }

    /// Wrap a Cartesian position into the home cell (fractional
    /// coordinates in `[0,1)`).
    pub fn wrap(&self, r: [f64; 3]) -> [f64; 3] {
        let mut u = self.to_frac(r);
        for ub in &mut u {
            *ub = ub.rem_euclid(1.0);
        }
        self.to_cart(u)
    }

    /// Minimum-image displacement `b − a` (and its length) over the 27
    /// nearest periodic images — exact for cells whose Wigner–Seitz
    /// radius is reached within one image shell (all cells used here).
    pub fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> ([f64; 3], f64) {
        let d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let mut u = self.to_frac(d);
        // Reduce to the central cell first, then scan neighbours.
        for ub in &mut u {
            *ub -= ub.round();
        }
        let mut best = [0.0; 3];
        let mut best_r2 = f64::INFINITY;
        for di in -1..=1 {
            for dj in -1..=1 {
                for dk in -1..=1 {
                    let cand = self.to_cart([
                        u[0] + di as f64,
                        u[1] + dj as f64,
                        u[2] + dk as f64,
                    ]);
                    let r2 = cand[0] * cand[0] + cand[1] * cand[1] + cand[2] * cand[2];
                    if r2 < best_r2 {
                        best_r2 = r2;
                        best = cand;
                    }
                }
            }
        }
        (best, best_r2.sqrt())
    }

    /// Radius of the inscribed sphere of the Wigner–Seitz cell — the
    /// largest safe Jastrow cutoff.
    pub fn wigner_seitz_radius(&self) -> f64 {
        let mut rmin = f64::INFINITY;
        for di in -1i32..=1 {
            for dj in -1i32..=1 {
                for dk in -1i32..=1 {
                    if di == 0 && dj == 0 && dk == 0 {
                        continue;
                    }
                    let t = self.to_cart([di as f64, dj as f64, dk as f64]);
                    let r = 0.5 * (t[0] * t[0] + t[1] * t[1] + t[2] * t[2]).sqrt();
                    rmin = rmin.min(r);
                }
            }
        }
        rmin
    }

    /// Tile the cell `nx × ny × nz` times into a supercell.
    pub fn tile(&self, nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        let mut rows = self.a;
        for (row, n) in rows.iter_mut().zip([nx, ny, nz]) {
            for x in row.iter_mut() {
                *x *= n as f64;
            }
        }
        Self::from_rows(rows)
    }
}

/// Graphite lattice constants in bohr (a = 2.461 Å, c = 6.708 Å —
/// AB-stacked graphite, paper Fig. 1).
pub const GRAPHITE_A: f64 = 4.6507;
/// GRAPHITE C.
pub const GRAPHITE_C: f64 = 12.6765;

/// The 4-carbon AB-stacked graphite primitive cell: lattice + fractional
/// atom positions (A layer at z=0, B layer at z=1/2).
pub fn graphite_primitive() -> (Lattice, Vec<[f64; 3]>) {
    let lat = Lattice::hexagonal(GRAPHITE_A, GRAPHITE_C);
    let frac = vec![
        [0.0, 0.0, 0.0],
        [1.0 / 3.0, 2.0 / 3.0, 0.0],
        [0.0, 0.0, 0.5],
        [2.0 / 3.0, 1.0 / 3.0, 0.5],
    ];
    (lat, frac)
}

/// Tile the graphite primitive cell into an `nx × ny × nz` supercell;
/// returns the supercell lattice and *Cartesian* ion positions
/// (`4·nx·ny·nz` carbons). `(4,4,1)` reproduces the 64-carbon CORAL
/// benchmark cell.
pub fn graphite_supercell(nx: usize, ny: usize, nz: usize) -> (Lattice, Vec<[f64; 3]>) {
    let (prim, frac) = graphite_primitive();
    let sup = prim.tile(nx, ny, nz);
    let mut ions = Vec::with_capacity(4 * nx * ny * nz);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                for f in &frac {
                    let u = [
                        (f[0] + i as f64) / nx as f64,
                        (f[1] + j as f64) / ny as f64,
                        (f[2] + k as f64) / nz as f64,
                    ];
                    ions.push(sup.to_cart(u));
                }
            }
        }
    }
    (sup, ions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cart_frac_round_trip() {
        let lat = Lattice::hexagonal(2.0, 5.0);
        let r = [0.7, 1.3, 2.9];
        let u = lat.to_frac(r);
        let r2 = lat.to_cart(u);
        for d in 0..3 {
            assert!((r[d] - r2[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn volume_of_known_cells() {
        assert!((Lattice::cubic(2.0).volume() - 8.0).abs() < 1e-12);
        let hexa = Lattice::hexagonal(1.0, 1.0);
        assert!((hexa.volume() - 0.5 * 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn jacobian_is_inverse() {
        let lat = Lattice::hexagonal(3.1, 7.7);
        let g = lat.jacobian();
        // A · G = I (row convention: (A G)_{ij} = Σ_k a[i][k] g[k][j])
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for (k, gk) in g.iter().enumerate() {
                    s += lat.a[i][k] * gk[j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn min_image_cubic_matches_direct() {
        let lat = Lattice::cubic(4.0);
        let (d, r) = lat.min_image([0.5, 0.5, 0.5], [3.9, 0.5, 0.5]);
        assert!((r - 0.6).abs() < 1e-12);
        assert!((d[0] + 0.6).abs() < 1e-12, "wraps to negative x: {d:?}");
    }

    #[test]
    fn min_image_is_symmetric_and_bounded() {
        let lat = Lattice::hexagonal(3.0, 8.0);
        let rc = lat.wigner_seitz_radius();
        let pts = [
            [0.1, 0.2, 0.3],
            [2.9, 0.1, 7.9],
            [1.5, 1.5, 4.0],
            [-1.0, 2.0, 9.0],
        ];
        for a in pts {
            for b in pts {
                let (dab, rab) = lat.min_image(a, b);
                let (dba, rba) = lat.min_image(b, a);
                assert!((rab - rba).abs() < 1e-10);
                for d in 0..3 {
                    assert!((dab[d] + dba[d]).abs() < 1e-10);
                }
                // Never longer than the direct displacement.
                let direct = ((a[0] - b[0]).powi(2)
                    + (a[1] - b[1]).powi(2)
                    + (a[2] - b[2]).powi(2))
                .sqrt();
                assert!(rab <= direct + 1e-12);
                let _ = rc;
            }
        }
    }

    #[test]
    fn min_image_invariant_under_lattice_translations() {
        let lat = Lattice::hexagonal(2.5, 6.0);
        let a = [0.3, 0.4, 0.5];
        let b = [1.9, 0.2, 5.0];
        let (_, r0) = lat.min_image(a, b);
        let shift = lat.to_cart([1.0, -2.0, 3.0]);
        let b2 = [b[0] + shift[0], b[1] + shift[1], b[2] + shift[2]];
        let (_, r1) = lat.min_image(a, b2);
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn wigner_seitz_radius_cubic() {
        assert!((Lattice::cubic(2.0).wigner_seitz_radius() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_puts_points_in_cell() {
        let lat = Lattice::hexagonal(2.0, 4.0);
        let r = lat.wrap([-5.0, 7.0, 9.5]);
        let u = lat.to_frac(r);
        for d in 0..3 {
            assert!((0.0..1.0).contains(&u[d]), "u[{d}]={}", u[d]);
        }
    }

    #[test]
    fn tiling_scales_volume() {
        let (prim, atoms) = graphite_primitive();
        assert_eq!(atoms.len(), 4);
        let sup = prim.tile(4, 4, 1);
        assert!((sup.volume() - 16.0 * prim.volume()).abs() < 1e-9);
    }

    #[test]
    fn coral_4x4x1_has_64_carbons() {
        let (sup, ions) = graphite_supercell(4, 4, 1);
        assert_eq!(ions.len(), 64);
        // All ions inside the supercell.
        for r in &ions {
            let u = sup.to_frac(*r);
            for d in 0..3 {
                assert!((-1e-12..1.0).contains(&u[d]), "u[{d}]={}", u[d]);
            }
        }
        // Nearest-neighbour C-C distance ≈ a/√3 = 2.685 bohr.
        let (_, r01) = sup.min_image(ions[0], ions[1]);
        assert!((r01 - GRAPHITE_A / 3f64.sqrt()).abs() < 1e-6, "r01={r01}");
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_lattice_rejected() {
        let _ = Lattice::from_rows([[1.0, 0.0, 0.0], [2.0, 0.0, 0.0], [0.0, 0.0, 1.0]]);
    }
}
