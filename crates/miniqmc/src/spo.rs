//! SPOSet: the bridge between B-spline engines (fractional grid
//! coordinates) and QMC (Cartesian positions in a general cell).
//!
//! Splines are stored on the unit cube of *fractional* coordinates
//! (paper Sec. VI: the grid simulates periodic images of the primitive
//! cell). For a Cartesian position `r`, `u = r·A⁻¹` is evaluated and the
//! derivatives are pulled back: `∇ᵣ = G ∇ᵤ`, `Hᵣ = G Hᵤ Gᵀ` with
//! `G = A⁻¹`. Graphite's hexagonal cell is why the drift-diffusion phase
//! needs VGH rather than VGL (the Laplacian is `tr(G Hᵤ Gᵀ)`, not the
//! trace of `Hᵤ`).

use crate::lattice::Lattice;
use bspline::blocked::BlockedEngine;
use bspline::service::{ClientConfig, ServiceClient, ServiceConfig, SpoService};
use bspline::{BatchOut, BsplineSoA, MoveContext, PosBlock, SpoEngine, WalkerSoA};
use einspline::{MultiCoefs, Real};
use std::sync::Arc;

/// Orbital values + Cartesian gradients + Laplacians for one position —
/// the determinant-facing view, in `f64`.
#[derive(Clone, Debug)]
pub struct SpoVgl {
    /// Orbital value stream.
    pub v: Vec<f64>,
    /// Gradient x-component stream.
    pub gx: Vec<f64>,
    /// Gradient y-component stream.
    pub gy: Vec<f64>,
    /// Gradient z-component stream.
    pub gz: Vec<f64>,
    /// Lap.
    pub lap: Vec<f64>,
}

impl SpoVgl {
    fn zeros(n: usize) -> Self {
        Self {
            v: vec![0.0; n],
            gx: vec![0.0; n],
            gy: vec![0.0; n],
            gz: vec![0.0; n],
            lap: vec![0.0; n],
        }
    }
}

/// A set of N single-particle orbitals over a periodic cell.
///
/// `T` is the *orbital* (storage + kernel) precision; everything this
/// type hands to QMC — values, Cartesian gradients, Laplacians — is
/// delivered and accumulated in the paired accumulation precision
/// `T::Accum = f64` (see [`einspline::Real::Accum`]), regardless of
/// whether the orbital tables are `f32` or `f64`. This is the
/// mixed-precision contract: storage precision is a bandwidth knob,
/// never an observable-accuracy knob.
///
/// `E` is the orbital *engine*: any [`SpoEngine`] with contiguous SoA
/// outputs. The default is the monolithic [`BsplineSoA`]; QMC-scale
/// runs construct from the cache-budget orbital-block decomposition
/// instead ([`SpoSet::new_blocked`] → [`BlockedEngine`]), which changes
/// nothing downstream — blocked outputs scatter into the same
/// contiguous [`WalkerSoA`] streams the pull-back reads.
#[derive(Clone, Debug)]
pub struct SpoSet<T: Real, E: SpoEngine<T, Out = WalkerSoA<T>> = BsplineSoA<T>> {
    engine: E,
    lattice: Lattice,
    /// `G = A⁻¹` (Cartesian→fractional Jacobian).
    g: [[f64; 3]; 3],
    /// Metric `M = GᵀG` used for the Laplacian pull-back.
    metric: [[f64; 3]; 3],
    scratch: WalkerSoA<T>,
    out: SpoVgl,
    /// Batched-sweep scratch: per-electron engine outputs + position
    /// block, grown on demand and reused across sweeps.
    batch_scratch: BatchOut<WalkerSoA<T>>,
    batch_pos: PosBlock<T>,
    batch_rows: Vec<SpoVgl>,
    /// Per-walker single-electron move state: the cached locate/weights
    /// the propose (`evaluate_v_one`) and accept (`evaluate_vgl_one`)
    /// sides of one move share.
    move_ctx: MoveContext<T>,
}

impl<T: Real<Accum = f64>> SpoSet<T> {
    /// Wrap a coefficient table whose grids span the unit cube in the
    /// default monolithic SoA engine.
    pub fn new(coefs: MultiCoefs<T>, lattice: Lattice) -> Self {
        Self::with_engine(BsplineSoA::new(coefs), lattice)
    }
}

impl<T: Real<Accum = f64>> SpoSet<T, BlockedEngine<BsplineSoA<T>>> {
    /// Construct from the cache-budget orbital-block decomposition
    /// ([`BlockedEngine::from_multi`], first-touch parallel block
    /// construction included): the QMC-scale path where one table of N
    /// orbitals is served by `⌈N·slab/budget⌉` independent cache-sized
    /// blocks. Use [`bspline::tuning::default_block_budget`] (table
    /// size in, budget out) or a [`bspline::tuning::tune_block_budget`]
    /// sweep for the budget.
    pub fn new_blocked(coefs: MultiCoefs<T>, lattice: Lattice, budget_bytes: usize) -> Self {
        Self::with_engine(BlockedEngine::from_multi(&coefs, budget_bytes), lattice)
    }
}

impl<T: Real<Accum = f64>> SpoSet<T, ServiceClient<T, BsplineSoA<T>>> {
    /// Construct service-backed: the orbital engine is owned by a
    /// [`SpoService`]'s long-lived workers, and every evaluation this
    /// set performs is a service submission — coalescable with other
    /// walkers' submissions to the same service. Results are
    /// bit-identical to the direct [`SpoSet::new`] path (fusing never
    /// splits a per-orbital accumulation chain).
    pub fn new_service(coefs: MultiCoefs<T>, lattice: Lattice, cfg: ServiceConfig) -> Self {
        let service = Arc::new(SpoService::new(BsplineSoA::new(coefs), cfg));
        Self::with_service(service, lattice)
    }

    /// Wrap an existing shared service (several `SpoSet`s — one per
    /// walker stream — submitting to one service is the coalescing
    /// scenario the service exists for). Uses the default
    /// [`ClientConfig`] failure policy: bounded retry with backoff and
    /// health-gated fallback to direct evaluation, so the driver keeps
    /// producing physics when replicas die.
    pub fn with_service(
        service: Arc<SpoService<T, BsplineSoA<T>>>,
        lattice: Lattice,
    ) -> Self {
        Self::with_service_client(service, lattice, ClientConfig::default())
    }

    /// [`SpoSet::with_service`] with an explicit client failure policy
    /// — deadline per submission, retry budget, fallback gating.
    pub fn with_service_client(
        service: Arc<SpoService<T, BsplineSoA<T>>>,
        lattice: Lattice,
        client_cfg: ClientConfig,
    ) -> Self {
        Self::with_engine(ServiceClient::with_config(service, client_cfg), lattice)
    }
}

impl<T: Real<Accum = f64>, E: SpoEngine<T, Out = WalkerSoA<T>>> SpoSet<T, E> {
    /// Wrap any SoA-output engine whose domain spans the unit cube of
    /// fractional coordinates.
    pub fn with_engine(engine: E, lattice: Lattice) -> Self {
        assert_eq!(
            engine.domain(),
            [(0.0, 1.0); 3],
            "SPO splines live on fractional coordinates"
        );
        let n = engine.n_splines();
        let g = lattice.jacobian();
        let mut metric = [[0.0; 3]; 3];
        for b in 0..3 {
            for c in 0..3 {
                for ga in g.iter() {
                    metric[b][c] += ga[b] * ga[c];
                }
            }
        }
        let scratch = engine.make_out();
        Self {
            engine,
            lattice,
            g,
            metric,
            scratch,
            out: SpoVgl::zeros(n),
            batch_scratch: BatchOut::from_blocks(Vec::new()),
            batch_pos: PosBlock::new(),
            batch_rows: Vec::new(),
            move_ctx: MoveContext::new(),
        }
    }

    #[inline]
    /// N orbitals.
    pub fn n_orbitals(&self) -> usize {
        self.engine.n_splines()
    }

    #[inline]
    /// Lattice.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// Direct access to the underlying engine (benchmarks).
    #[inline]
    pub fn engine(&self) -> &E {
        &self.engine
    }

    fn frac_pos(&self, r: [f64; 3]) -> [T; 3] {
        let u = self.lattice.to_frac(r);
        [T::from_f64(u[0]), T::from_f64(u[1]), T::from_f64(u[2])]
    }

    /// Orbital values at Cartesian `r` (kernel V).
    pub fn evaluate_v(&mut self, r: [f64; 3]) -> &[f64] {
        let u = self.frac_pos(r);
        self.engine.v(u, &mut self.scratch);
        let n = self.n_orbitals();
        for k in 0..n {
            self.out.v[k] = self.scratch.value(k).to_accum();
        }
        &self.out.v[..n]
    }

    /// Values + Cartesian gradients + Laplacians at `r` (kernel VGH +
    /// pull-back). Returns the filled view.
    pub fn evaluate_vgl(&mut self, r: [f64; 3]) -> &SpoVgl {
        let u = self.frac_pos(r);
        self.engine.vgh(u, &mut self.scratch);
        let n = self.n_orbitals();
        Self::pull_back(&self.g, &self.metric, n, &self.scratch, &mut self.out);
        &self.out
    }

    /// Orbital values at `r` through the single-electron fast path
    /// ([`SpoEngine::v_one`]): the grid locate + basis weights for the
    /// fractional position are cached in this walker's move context, so
    /// the accept-side [`Self::evaluate_vgl_one`] at the *same* `r`
    /// reuses them without recomputation. Bit-identical to
    /// [`Self::evaluate_v`].
    pub fn evaluate_v_one(&mut self, r: [f64; 3]) -> &[f64] {
        let u = self.frac_pos(r);
        self.engine.v_one(&mut self.move_ctx, u, &mut self.scratch);
        let n = self.n_orbitals();
        for k in 0..n {
            self.out.v[k] = self.scratch.value(k).to_accum();
        }
        &self.out.v[..n]
    }

    /// Values + Cartesian gradients + Laplacians at `r` through the
    /// single-electron fast path: the engine runs the VGH kernel
    /// ([`SpoEngine::vgh_one`] — the hexagonal-cell Laplacian pull-back
    /// needs the full Hessian) over the locate/weights cached by a
    /// prior [`Self::evaluate_v_one`] at the same position. Bit-identical
    /// to [`Self::evaluate_vgl`].
    pub fn evaluate_vgl_one(&mut self, r: [f64; 3]) -> &SpoVgl {
        let u = self.frac_pos(r);
        self.engine.vgh_one(&mut self.move_ctx, u, &mut self.scratch);
        let n = self.n_orbitals();
        Self::pull_back(&self.g, &self.metric, n, &self.scratch, &mut self.out);
        &self.out
    }

    /// Pull one engine output block back to Cartesian coordinates:
    /// `∇ᵣ = G ∇ᵤ`, `lap = Σ_bc M[b][c]·Hᵤ[b][c]` (Hᵤ symmetric,
    /// 6 streams).
    fn pull_back(
        g: &[[f64; 3]; 3],
        m: &[[f64; 3]; 3],
        n: usize,
        scratch: &WalkerSoA<T>,
        out: &mut SpoVgl,
    ) {
        for k in 0..n {
            out.v[k] = scratch.value(k).to_accum();
            let gu = scratch.gradient(k);
            let gu = [gu[0].to_accum(), gu[1].to_accum(), gu[2].to_accum()];
            out.gx[k] = g[0][0] * gu[0] + g[0][1] * gu[1] + g[0][2] * gu[2];
            out.gy[k] = g[1][0] * gu[0] + g[1][1] * gu[1] + g[1][2] * gu[2];
            out.gz[k] = g[2][0] * gu[0] + g[2][1] * gu[1] + g[2][2] * gu[2];
            let h = scratch.hessian(k);
            let h = [
                h[0].to_accum(),
                h[1].to_accum(),
                h[2].to_accum(),
                h[3].to_accum(),
                h[4].to_accum(),
                h[5].to_accum(),
            ];
            out.lap[k] = m[0][0] * h[0]
                + m[1][1] * h[3]
                + m[2][2] * h[5]
                + 2.0 * (m[0][1] * h[1] + m[0][2] * h[2] + m[1][2] * h[4]);
        }
    }

    /// Grow and fill the batched-sweep scratch for `rs.len()` positions.
    fn prepare_batch(&mut self, rs: &[[f64; 3]]) {
        self.batch_pos.clear();
        for &r in rs {
            let u = self.frac_pos(r);
            self.batch_pos.push(u);
        }
        let n = self.n_orbitals();
        self.batch_scratch.ensure(rs.len(), || WalkerSoA::new(n));
        while self.batch_rows.len() < rs.len() {
            self.batch_rows.push(SpoVgl::zeros(n));
        }
    }

    /// Orbital values for a whole block of Cartesian positions (kernel V
    /// batched): row `e` of the result holds position `e`'s values (only
    /// the `v` stream is filled). One engine call per block; scratch is
    /// reused across sweeps.
    pub fn evaluate_v_batch(&mut self, rs: &[[f64; 3]]) -> &[SpoVgl] {
        self.prepare_batch(rs);
        self.engine.v_batch(&self.batch_pos, &mut self.batch_scratch);
        let n = self.n_orbitals();
        for (e, row) in self.batch_rows.iter_mut().take(rs.len()).enumerate() {
            let scratch = self.batch_scratch.block(e);
            for k in 0..n {
                row.v[k] = scratch.value(k).to_accum();
            }
        }
        &self.batch_rows[..rs.len()]
    }

    /// The multi-electron VGH sweep: values + Cartesian gradients +
    /// Laplacians for every position of the block — one batched engine
    /// call (`vgh_batch`) followed by the per-row pull-back. This is
    /// what the VMC/DMC drift-diffusion machinery consumes to get all
    /// electrons' drift gradients and kinetic Laplacians at once.
    pub fn evaluate_vgl_batch(&mut self, rs: &[[f64; 3]]) -> &[SpoVgl] {
        self.prepare_batch(rs);
        self.engine.vgh_batch(&self.batch_pos, &mut self.batch_scratch);
        let n = self.n_orbitals();
        for (e, row) in self.batch_rows.iter_mut().take(rs.len()).enumerate() {
            Self::pull_back(
                &self.g,
                &self.metric,
                n,
                self.batch_scratch.block(e),
                row,
            );
        }
        &self.batch_rows[..rs.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use einspline::{Grid1, Spline3};
    use std::f64::consts::PI;

    /// Build an SpoSet over `lat` with analytically known orbitals
    /// (plane-wave-like smooth periodic functions of the fractional
    /// coordinates).
    fn build(lat: Lattice, ng: usize, n_orb: usize) -> SpoSet<f64> {
        let g = Grid1::periodic(0.0, 1.0, ng);
        let mut coefs = MultiCoefs::<f64>::new(g, g, g, n_orb);
        for s in 0..n_orb {
            let kx = 1 + (s % 2);
            let ky = 1 + (s / 2);
            let mut data = vec![0.0; ng * ng * ng];
            for i in 0..ng {
                for j in 0..ng {
                    for k in 0..ng {
                        let (x, y, z) = (
                            i as f64 / ng as f64,
                            j as f64 / ng as f64,
                            k as f64 / ng as f64,
                        );
                        data[(i * ng + j) * ng + k] = (2.0 * PI * kx as f64 * x).cos()
                            * (2.0 * PI * ky as f64 * y).sin()
                            + 0.3 * (2.0 * PI * z).cos()
                            + 1.7;
                    }
                }
            }
            let sp = Spline3::<f64>::interpolate(g, g, g, &data);
            coefs.set_orbital(s, &sp);
        }
        SpoSet::new(coefs, lat)
    }

    #[test]
    fn values_match_analytic_in_hexagonal_cell() {
        let lat = Lattice::hexagonal(3.0, 7.0);
        let mut spo = build(lat, 24, 3);
        let r = lat.to_cart([0.31, 0.62, 0.13]);
        let v = spo.evaluate_v(r).to_vec();
        let u = [0.31, 0.62, 0.13];
        for (s, val) in v.iter().enumerate() {
            let kx = (1 + s % 2) as f64;
            let ky = (1 + s / 2) as f64;
            let expect = (2.0 * PI * kx * u[0]).cos() * (2.0 * PI * ky * u[1]).sin()
                + 0.3 * (2.0 * PI * u[2]).cos()
                + 1.7;
            assert!((val - expect).abs() < 5e-4, "s={s}: {val} vs {expect}");
        }
    }

    #[test]
    fn cartesian_gradient_matches_finite_difference() {
        let lat = Lattice::hexagonal(2.5, 6.0);
        let mut spo = build(lat, 32, 2);
        let r = lat.to_cart([0.4, 0.3, 0.6]);
        let h = 1e-5;
        let out = spo.evaluate_vgl(r).clone();
        for d in 0..3 {
            let mut rp = r;
            rp[d] += h;
            let vp = spo.evaluate_v(rp).to_vec();
            let mut rm = r;
            rm[d] -= h;
            let vm = spo.evaluate_v(rm).to_vec();
            for k in 0..2 {
                let fd = (vp[k] - vm[k]) / (2.0 * h);
                let an = [out.gx[k], out.gy[k], out.gz[k]][d];
                assert!((an - fd).abs() < 1e-4, "d={d} k={k}: {an} vs {fd}");
            }
        }
    }

    #[test]
    fn cartesian_laplacian_matches_finite_difference() {
        let lat = Lattice::hexagonal(2.5, 6.0);
        let mut spo = build(lat, 32, 2);
        let r = lat.to_cart([0.21, 0.55, 0.37]);
        let h = 2e-4;
        let out = spo.evaluate_vgl(r).clone();
        let v0 = spo.evaluate_v(r).to_vec();
        let mut lap_fd = [0.0; 2];
        for d in 0..3 {
            let mut rp = r;
            rp[d] += h;
            let vp = spo.evaluate_v(rp).to_vec();
            let mut rm = r;
            rm[d] -= h;
            let vm = spo.evaluate_v(rm).to_vec();
            for k in 0..2 {
                lap_fd[k] += (vp[k] - 2.0 * v0[k] + vm[k]) / (h * h);
            }
        }
        for k in 0..2 {
            let rel = (out.lap[k] - lap_fd[k]).abs() / lap_fd[k].abs().max(1.0);
            assert!(rel < 5e-2, "k={k}: {} vs {}", out.lap[k], lap_fd[k]);
        }
    }

    #[test]
    fn orthorhombic_cell_laplacian_is_plain_trace() {
        // For a diagonal lattice the metric is diag(1/L²), so the
        // pull-back must equal scaling each Hessian diagonal.
        let lat = Lattice::orthorhombic(2.0, 3.0, 4.0);
        let mut spo = build(lat, 16, 1);
        let r = lat.to_cart([0.3, 0.3, 0.3]);
        let out = spo.evaluate_vgl(r).clone();
        let u = [0.3f64, 0.3, 0.3];
        let mut scratch = WalkerSoA::<f64>::new(1);
        spo.engine().vgh(u, &mut scratch);
        let h = scratch.hessian(0);
        let expect = h[0] / 4.0 + h[3] / 9.0 + h[5] / 16.0;
        assert!((out.lap[0] - expect).abs() < 1e-10);
    }

    #[test]
    fn batched_sweep_matches_scalar_evaluations() {
        let lat = Lattice::hexagonal(2.5, 6.0);
        let mut spo = build(lat, 16, 3);
        let rs: Vec<[f64; 3]> = [
            [0.11, 0.42, 0.83],
            [0.57, 0.24, 0.39],
            [0.91, 0.66, 0.05],
            [0.33, 0.78, 0.52],
        ]
        .iter()
        .map(|u| lat.to_cart(*u))
        .collect();

        let scalar: Vec<SpoVgl> =
            rs.iter().map(|&r| spo.evaluate_vgl(r).clone()).collect();
        let batch = spo.evaluate_vgl_batch(&rs).to_vec();
        assert_eq!(batch.len(), rs.len());
        for (e, (s, b)) in scalar.iter().zip(&batch).enumerate() {
            for k in 0..3 {
                assert_eq!(s.v[k], b.v[k], "e={e} k={k}");
                assert_eq!(s.gx[k], b.gx[k]);
                assert_eq!(s.gy[k], b.gy[k]);
                assert_eq!(s.gz[k], b.gz[k]);
                assert_eq!(s.lap[k], b.lap[k]);
            }
        }

        let v_scalar: Vec<Vec<f64>> =
            rs.iter().map(|&r| spo.evaluate_v(r).to_vec()).collect();
        let v_batch = spo.evaluate_v_batch(&rs).to_vec();
        for (e, (s, b)) in v_scalar.iter().zip(&v_batch).enumerate() {
            assert_eq!(s.as_slice(), &b.v[..3], "e={e}");
        }
    }

    #[test]
    fn batched_sweep_scratch_grows_and_shrinks_view() {
        let lat = Lattice::cubic(4.0);
        let mut spo = build(lat, 12, 2);
        let big: Vec<[f64; 3]> = (0..6)
            .map(|i| lat.to_cart([0.1 * i as f64, 0.3, 0.5]))
            .collect();
        assert_eq!(spo.evaluate_vgl_batch(&big).len(), 6);
        // Smaller follow-up sweep reuses the grown scratch.
        assert_eq!(spo.evaluate_vgl_batch(&big[..2]).len(), 2);
        // Empty sweep is a no-op.
        assert!(spo.evaluate_vgl_batch(&[]).is_empty());
    }

    #[test]
    fn blocked_spo_set_matches_monolithic_bit_for_bit() {
        let lat = Lattice::hexagonal(2.5, 6.0);
        let mut mono = build(lat, 16, 5);
        // Rebuild the same coefficients for the blocked path.
        let coefs = {
            let spo = build(lat, 16, 5);
            spo.engine().coefs().clone()
        };
        // Budget of 1 byte floors to one cache-line quantum (8 f64
        // splines) per block: a 5-orbital table still decomposes (B=1
        // here); use a wider table for a real multi-block split.
        let mut blocked = SpoSet::new_blocked(coefs, lat, 1);
        let rs: Vec<[f64; 3]> = [[0.11, 0.42, 0.83], [0.57, 0.24, 0.39]]
            .iter()
            .map(|u| lat.to_cart(*u))
            .collect();
        for &r in &rs {
            let a = mono.evaluate_vgl(r).clone();
            let b = blocked.evaluate_vgl(r).clone();
            for k in 0..5 {
                assert_eq!(a.v[k], b.v[k], "k={k}");
                assert_eq!(a.gx[k], b.gx[k]);
                assert_eq!(a.lap[k], b.lap[k]);
            }
        }
        // Batched sweep parity through the blocked engine.
        let am = mono.evaluate_vgl_batch(&rs).to_vec();
        let ab = blocked.evaluate_vgl_batch(&rs).to_vec();
        for (e, (x, y)) in am.iter().zip(&ab).enumerate() {
            for k in 0..5 {
                assert_eq!(x.v[k], y.v[k], "e={e} k={k}");
                assert_eq!(x.lap[k], y.lap[k]);
            }
        }
        assert!(blocked.engine().n_blocks() >= 1);
    }

    #[test]
    fn service_backed_spo_set_matches_direct_bit_for_bit() {
        use bspline::service::ServiceConfig;
        use std::time::Duration;
        let lat = Lattice::hexagonal(2.5, 6.0);
        let mut direct = build(lat, 16, 4);
        let coefs = {
            let spo = build(lat, 16, 4);
            spo.engine().coefs().clone()
        };
        let mut served = SpoSet::new_service(
            coefs,
            lat,
            ServiceConfig {
                replicas: 2,
                max_batch: 8,
                max_wait: Duration::from_micros(50),
                queue_positions: 64,
                ..ServiceConfig::default()
            },
        );
        let rs: Vec<[f64; 3]> = [[0.11, 0.42, 0.83], [0.57, 0.24, 0.39], [0.91, 0.66, 0.05]]
            .iter()
            .map(|u| lat.to_cart(*u))
            .collect();
        // Scalar path (single-position submissions).
        for &r in &rs {
            let a = direct.evaluate_vgl(r).clone();
            let b = served.evaluate_vgl(r).clone();
            for k in 0..4 {
                assert_eq!(a.v[k], b.v[k], "k={k}");
                assert_eq!(a.gx[k], b.gx[k]);
                assert_eq!(a.lap[k], b.lap[k]);
            }
        }
        // Batched sweep (whole-block submission).
        let am = direct.evaluate_vgl_batch(&rs).to_vec();
        let ab = served.evaluate_vgl_batch(&rs).to_vec();
        for (e, (x, y)) in am.iter().zip(&ab).enumerate() {
            for k in 0..4 {
                assert_eq!(x.v[k], y.v[k], "e={e} k={k}");
                assert_eq!(x.gz[k], y.gz[k]);
                assert_eq!(x.lap[k], y.lap[k]);
            }
        }
        let av = direct.evaluate_v_batch(&rs).to_vec();
        let bv = served.evaluate_v_batch(&rs).to_vec();
        for (x, y) in av.iter().zip(&bv) {
            assert_eq!(&x.v[..4], &y.v[..4]);
        }
    }

    #[test]
    fn service_backed_spo_set_survives_replica_death() {
        use bspline::service::{ServiceFault, ServiceFaultPlan};
        use bspline::{BsplineSoA, SpoService};
        let lat = Lattice::hexagonal(2.5, 6.0);
        let mut direct = build(lat, 16, 4);
        let coefs = {
            let spo = build(lat, 16, 4);
            spo.engine().coefs().clone()
        };
        // One replica scripted to die on its first request and stay
        // dead: the client's health-gated fallback must keep the
        // SpoSet producing bit-identical physics.
        let service = Arc::new(SpoService::with_fault_plan(
            BsplineSoA::new(coefs),
            ServiceConfig {
                replicas: 1,
                max_retries: 0,
                ..ServiceConfig::default()
            },
            ServiceFaultPlan {
                faults: vec![ServiceFault::Kill {
                    worker: 0,
                    at_request: 0,
                }],
            },
        ));
        let mut served = SpoSet::with_service_client(service, lat, ClientConfig::default());
        let rs: Vec<[f64; 3]> = [[0.11, 0.42, 0.83], [0.57, 0.24, 0.39]]
            .iter()
            .map(|u| lat.to_cart(*u))
            .collect();
        let am = direct.evaluate_vgl_batch(&rs).to_vec();
        let ab = served.evaluate_vgl_batch(&rs).to_vec();
        for (e, (x, y)) in am.iter().zip(&ab).enumerate() {
            for k in 0..4 {
                assert_eq!(x.v[k], y.v[k], "e={e} k={k}");
                assert_eq!(x.lap[k], y.lap[k]);
            }
        }
        // The scalar path also keeps serving through the fallback.
        for &r in &rs {
            let a = direct.evaluate_vgl(r).clone();
            let b = served.evaluate_vgl(r).clone();
            for k in 0..4 {
                assert_eq!(a.v[k], b.v[k], "k={k}");
            }
        }
        assert!(
            served.engine().fallbacks() >= 1,
            "the direct path carried the physics"
        );
    }

    #[test]
    fn one_move_path_matches_scalar_bit_for_bit() {
        let lat = Lattice::hexagonal(2.5, 6.0);
        let mut spo = build(lat, 16, 3);
        let rs: Vec<[f64; 3]> = [[0.11, 0.42, 0.83], [0.57, 0.24, 0.39], [0.91, 0.66, 0.05]]
            .iter()
            .map(|u| lat.to_cart(*u))
            .collect();
        for &r in &rs {
            // Propose side: V through the move context...
            let v_one = spo.evaluate_v_one(r).to_vec();
            let v_scalar = spo.evaluate_v(r).to_vec();
            assert_eq!(v_scalar, v_one);
            // ...then the accept side reuses the cached weights (the
            // interleaved evaluate_v above did not touch the context).
            let one = spo.evaluate_vgl_one(r).clone();
            let scalar = spo.evaluate_vgl(r).clone();
            for k in 0..3 {
                assert_eq!(scalar.v[k], one.v[k], "k={k}");
                assert_eq!(scalar.gx[k], one.gx[k]);
                assert_eq!(scalar.gy[k], one.gy[k]);
                assert_eq!(scalar.gz[k], one.gz[k]);
                assert_eq!(scalar.lap[k], one.lap[k]);
            }
        }
    }

    #[test]
    fn periodic_positions_wrap() {
        let lat = Lattice::hexagonal(3.0, 7.0);
        let mut spo = build(lat, 16, 2);
        let r = lat.to_cart([0.2, 0.8, 0.5]);
        let shift = lat.to_cart([1.0, -1.0, 2.0]);
        let r2 = [r[0] + shift[0], r[1] + shift[1], r[2] + shift[2]];
        let v1 = spo.evaluate_v(r).to_vec();
        let v2 = spo.evaluate_v(r2).to_vec();
        for k in 0..2 {
            assert!((v1[k] - v2[k]).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "fractional")]
    fn non_unit_grids_rejected() {
        let g = Grid1::periodic(0.0, 2.0, 8);
        let coefs = MultiCoefs::<f64>::new(g, g, g, 2);
        let _ = SpoSet::new(coefs, Lattice::cubic(2.0));
    }
}
