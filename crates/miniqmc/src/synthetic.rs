//! Synthetic workload construction.
//!
//! The paper's benchmarks use DFT-generated graphite orbitals (CORAL
//! 4×4×1). We do not have those coefficient files, so we substitute
//! synthetic inputs that exercise identical code paths (see DESIGN.md):
//!
//! * [`synthetic_orbitals`] — smooth periodic orbitals built from a few
//!   low-|k| Fourier modes, fitted through the real coefficient solver.
//!   Used for physics-facing correctness (determinants, VMC).
//! * [`random_coefficients`] — coefficient tables filled with random
//!   numbers, exactly like miniQMC's benchmark table (paper Fig. 3 L9).
//!   Kernel cost depends only on grid size and N, not values.
//! * [`CoralSystem`] — the graphite supercell + electron counts + grid of
//!   the CORAL benchmark family (`4×4×1` → 64 C, 256 electrons, 128
//!   orbitals per spin, grid 48×48×60).

use crate::lattice::{graphite_supercell, Lattice};
use crate::particleset::ParticleSet;
use einspline::{Grid1, MultiCoefs, Real, Spline3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A low-|k| Fourier mode of the unit cube.
#[derive(Clone, Copy, Debug)]
struct Mode {
    k: [i32; 3],
    re: f64,
    im: f64,
}

/// Build `n_orbitals` smooth periodic orbitals on the given grids by
/// summing `n_modes` random low-frequency Fourier modes each, then
/// fitting interpolating B-spline coefficients (the full einspline
/// pipeline). Deterministic per seed.
pub fn synthetic_orbitals<T: Real>(
    gx: Grid1,
    gy: Grid1,
    gz: Grid1,
    n_orbitals: usize,
    n_modes: usize,
    seed: u64,
) -> MultiCoefs<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (nx, ny, nz) = (gx.num(), gy.num(), gz.num());
    let mut coefs = MultiCoefs::<T>::new(gx, gy, gz, n_orbitals);
    let mut data = vec![0.0f64; nx * ny * nz];

    for orb in 0..n_orbitals {
        // Low-|k| shell: components in [-2, 2]; ensure a non-zero k.
        let modes: Vec<Mode> = (0..n_modes)
            .map(|_| {
                let mut k = [0i32; 3];
                while k == [0, 0, 0] {
                    for kd in &mut k {
                        *kd = rng.random_range(-2..=2);
                    }
                }
                Mode {
                    k,
                    re: rng.random::<f64>() - 0.5,
                    im: rng.random::<f64>() - 0.5,
                }
            })
            .collect();

        data.iter_mut().for_each(|x| *x = 0.0);
        for m in &modes {
            // Separable complex exponentials: e^{2πi k·u} =
            // ex[i]·ey[j]·ez[k]; cheap per grid point.
            let phase = |n: usize, kk: i32| -> Vec<(f64, f64)> {
                (0..n)
                    .map(|i| {
                        let t = 2.0 * std::f64::consts::PI * kk as f64 * i as f64
                            / n as f64;
                        (t.cos(), t.sin())
                    })
                    .collect()
            };
            let ex = phase(nx, m.k[0]);
            let ey = phase(ny, m.k[1]);
            let ez = phase(nz, m.k[2]);
            for i in 0..nx {
                for j in 0..ny {
                    // (ex·ey) once per (i,j).
                    let xr = ex[i].0 * ey[j].0 - ex[i].1 * ey[j].1;
                    let xi = ex[i].0 * ey[j].1 + ex[i].1 * ey[j].0;
                    let row = &mut data[(i * ny + j) * nz..(i * ny + j + 1) * nz];
                    for (k, d) in row.iter_mut().enumerate() {
                        let zr = xr * ez[k].0 - xi * ez[k].1;
                        let zi = xr * ez[k].1 + xi * ez[k].0;
                        *d += m.re * zr - m.im * zi;
                    }
                }
            }
        }
        // A constant offset keeps determinants well-conditioned for the
        // lowest orbital and mimics the occupied-band envelope.
        if orb == 0 {
            for d in data.iter_mut() {
                *d += 2.0;
            }
        }
        let sp = Spline3::<T>::interpolate(gx, gy, gz, &data);
        coefs.set_orbital(orb, &sp);
    }
    coefs
}

/// Random coefficient table on a `nx×ny×nz` fractional grid — the
/// benchmark path (miniQMC `bSpline(nx,ny,nz,N)` with random init).
pub fn random_coefficients<T: Real>(
    nx: usize,
    ny: usize,
    nz: usize,
    n_splines: usize,
    seed: u64,
) -> MultiCoefs<T> {
    let gx = Grid1::periodic(0.0, 1.0, nx);
    let gy = Grid1::periodic(0.0, 1.0, ny);
    let gz = Grid1::periodic(0.0, 1.0, nz);
    let mut m = MultiCoefs::<T>::new(gx, gy, gz, n_splines);
    m.fill_random(&mut StdRng::seed_from_u64(seed));
    m
}

/// The CORAL graphite benchmark family (paper Sec. IV): an
/// `nx×ny×nz` tiling of the 4-carbon AB-stacked graphite cell.
#[derive(Clone, Debug)]
pub struct CoralSystem {
    /// Supercell lattice.
    pub lattice: Lattice,
    /// Carbon ions (Cartesian).
    pub ions: ParticleSet,
    /// Electrons per spin channel = orbitals N (4 valence e⁻ per C, two
    /// spins).
    pub n_per_spin: usize,
    /// Spline grids (fractional unit cube).
    pub grids: (Grid1, Grid1, Grid1),
}

impl CoralSystem {
    /// `CoralSystem::new(4, 4, 1, (48, 48, 60))` is the paper's baseline
    /// benchmark: 64 carbons, 256 electrons, N = 128 SPOs.
    pub fn new(nx: usize, ny: usize, nz: usize, grid: (usize, usize, usize)) -> Self {
        let (lattice, ion_pos) = graphite_supercell(nx, ny, nz);
        let ions = ParticleSet::new("ion", lattice, &ion_pos);
        let n_carbon = ion_pos.len();
        Self {
            lattice,
            ions,
            n_per_spin: 2 * n_carbon,
            grids: (
                Grid1::periodic(0.0, 1.0, grid.0),
                Grid1::periodic(0.0, 1.0, grid.1),
                Grid1::periodic(0.0, 1.0, grid.2),
            ),
        }
    }

    /// The 4×4×1 CORAL benchmark configuration.
    pub fn coral_4x4x1() -> Self {
        Self::new(4, 4, 1, (48, 48, 60))
    }

    /// Total electrons (both spins).
    pub fn n_electrons(&self) -> usize {
        2 * self.n_per_spin
    }

    /// Fitted synthetic orbitals for this system.
    pub fn orbitals<T: Real>(&self, seed: u64) -> MultiCoefs<T> {
        synthetic_orbitals(
            self.grids.0,
            self.grids.1,
            self.grids.2,
            self.n_per_spin,
            6,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coral_4x4x1_counts_match_paper() {
        let sys = CoralSystem::coral_4x4x1();
        assert_eq!(sys.ions.len(), 64);
        assert_eq!(sys.n_electrons(), 256);
        assert_eq!(sys.n_per_spin, 128);
        assert_eq!(sys.grids.0.num(), 48);
        assert_eq!(sys.grids.2.num(), 60);
    }

    #[test]
    fn synthetic_orbitals_are_periodic_and_smooth() {
        let g = Grid1::periodic(0.0, 1.0, 12);
        let coefs = synthetic_orbitals::<f64>(g, g, g, 3, 4, 7);
        let engine = bspline::BsplineSoA::new(coefs);
        let mut out = bspline::WalkerSoA::new(3);
        engine.v([0.25, 0.5, 0.75], &mut out);
        let a: Vec<f64> = (0..3).map(|k| out.value(k)).collect();
        engine.v([1.25, -0.5, 0.75], &mut out);
        for k in 0..3 {
            assert!((a[k] - out.value(k)).abs() < 1e-12, "periodicity k={k}");
        }
        // Orbital 0 carries the +2 offset.
        assert!(a[0] > 0.5, "offset present: {}", a[0]);
    }

    #[test]
    fn synthetic_orbitals_deterministic_by_seed() {
        let g = Grid1::periodic(0.0, 1.0, 8);
        let a = synthetic_orbitals::<f32>(g, g, g, 2, 3, 42);
        let b = synthetic_orbitals::<f32>(g, g, g, 2, 3, 42);
        let c = synthetic_orbitals::<f32>(g, g, g, 2, 3, 43);
        assert_eq!(a.line(2, 3, 4), b.line(2, 3, 4));
        assert_ne!(a.line(2, 3, 4), c.line(2, 3, 4));
    }

    #[test]
    fn distinct_orbitals_differ() {
        let g = Grid1::periodic(0.0, 1.0, 8);
        let coefs = synthetic_orbitals::<f64>(g, g, g, 4, 4, 11);
        let line = coefs.line(4, 4, 4);
        assert_ne!(line[1], line[2]);
        assert_ne!(line[2], line[3]);
    }

    #[test]
    fn random_coefficients_match_grid_shape() {
        let m = random_coefficients::<f32>(6, 8, 10, 32, 3);
        assert_eq!(m.n_splines(), 32);
        let (gx, gy, gz) = m.grids();
        assert_eq!((gx.num(), gy.num(), gz.num()), (6, 8, 10));
    }
}
