//! `roofline` — the performance model behind the paper's Fig. 10.
//!
//! The paper uses Intel Advisor to place each optimization step of the
//! VGH kernel on a cache-aware roofline. This crate derives the same
//! quantities from first principles:
//!
//! * [`kernel_cost`] — analytic FLOP and cache-traffic accounting per
//!   kernel × layout, straight from the loop structures in the `bspline`
//!   crate;
//! * [`dram_intensity`] — the paper's DRAM arithmetic intensity
//!   (`64N` coefficient reads + `10N` output writes per VGH eval);
//! * [`Roofline`] — platform ceilings (scalar / vector / FMA peaks and
//!   the bandwidth slope) and attainable-GFLOPS queries.

#![warn(missing_docs)]
#![warn(clippy::all)]

use bspline::{Kernel, Layout};
use cachesim::Platform;

/// Analytic cost of evaluating all N splines at one position.
#[derive(Clone, Copy, Debug)]
pub struct KernelCost {
    /// Floating-point operations (FMA = 2).
    pub flops: f64,
    /// Bytes moved between the core and the first cache level — the
    /// denominator of the *cache-aware* arithmetic intensity (counts
    /// every touch of coefficients and outputs, including the 64×/16×
    /// output re-touches that distinguish AoS from SoA).
    pub cache_bytes: f64,
    /// Compulsory DRAM bytes: every coefficient read once, every output
    /// written once (the paper's `64N` reads + `10N`/`13N` writes).
    pub dram_bytes_min: f64,
}

impl KernelCost {
    /// Cache-aware arithmetic intensity (FLOP/byte).
    pub fn cache_ai(&self) -> f64 {
        self.flops / self.cache_bytes
    }

    /// DRAM arithmetic intensity assuming compulsory traffic only.
    pub fn dram_ai(&self) -> f64 {
        self.flops / self.dram_bytes_min
    }
}

/// FLOPs and traffic for one evaluation of `n` splines (single
/// precision, 4-byte words).
///
/// Derivation (per spline):
///
/// * AoS VGH (Fig. 4a): 64 coefficient points × 13 FMA accumulations;
///   all 13 interleaved output components are re-touched per point.
/// * SoA VGH (Fig. 4b + z-unroll): 16 (i,j) planes × (3 z-contractions
///   of 4 FMA + 10 FMA accumulations); 10 streams re-touched per plane.
/// * VGL and V analogous with their stream counts; AoS VGL is not
///   z-unrolled (the paper lists the unroll as an Opt-A-era fix).
pub fn kernel_cost(kernel: Kernel, layout: Layout, n: usize) -> KernelCost {
    let nf = n as f64;
    let w = 4.0; // bytes per f32
    match (kernel, layout) {
        (Kernel::V, Layout::Aos) => KernelCost {
            flops: 64.0 * 2.0 * nf,
            cache_bytes: 64.0 * (w * nf) + 64.0 * 2.0 * (w * nf),
            dram_bytes_min: 64.0 * w * nf + w * nf,
        },
        (Kernel::V, _) => KernelCost {
            // z-fused: 16 planes × (4-FMA contraction + 1 accumulate).
            flops: 16.0 * (8.0 + 2.0) * nf,
            cache_bytes: 64.0 * (w * nf) + 16.0 * 2.0 * (w * nf),
            dram_bytes_min: 64.0 * w * nf + w * nf,
        },
        (Kernel::Vgl, Layout::Aos) => KernelCost {
            // 5 accumulations per point; 5 output components re-touched
            // per point (plus the tmp copy).
            flops: 64.0 * 10.0 * nf,
            cache_bytes: 64.0 * (w * nf) + 64.0 * 2.0 * (6.0 * w * nf),
            dram_bytes_min: 64.0 * w * nf + 5.0 * w * nf,
        },
        (Kernel::Vgl, _) => KernelCost {
            // 3 contractions (12 FMA) + 5 accumulations + the fused
            // Laplacian FMA per plane.
            flops: 16.0 * (24.0 + 12.0) * nf,
            cache_bytes: 64.0 * (w * nf) + 16.0 * 2.0 * (5.0 * w * nf),
            dram_bytes_min: 64.0 * w * nf + 5.0 * w * nf,
        },
        (Kernel::Vgh, Layout::Aos) => KernelCost {
            flops: 64.0 * 26.0 * nf,
            cache_bytes: 64.0 * (w * nf) + 64.0 * 2.0 * (13.0 * w * nf),
            dram_bytes_min: 64.0 * w * nf + 13.0 * w * nf,
        },
        (Kernel::Vgh, _) => KernelCost {
            flops: 16.0 * (24.0 + 20.0) * nf,
            cache_bytes: 64.0 * (w * nf) + 16.0 * 2.0 * (10.0 * w * nf),
            dram_bytes_min: 64.0 * w * nf + 10.0 * w * nf,
        },
    }
}

/// The paper's quoted DRAM intensity for VGH: "the bytes transferred
/// from the main memory are the same, 64N reads and 10N writes".
pub fn dram_intensity(kernel: Kernel, layout: Layout, n: usize) -> f64 {
    kernel_cost(kernel, layout, n).dram_ai()
}

/// A point on the roofline chart.
#[derive(Clone, Debug)]
pub struct RooflinePoint {
    /// Label (e.g. "AoS", "SoA", "AoSoA Nb=512").
    pub label: String,
    /// Arithmetic intensity, FLOP/byte.
    pub ai: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
}

/// Platform ceilings for roofline charts.
#[derive(Clone, Debug)]
pub struct Roofline {
    /// Platform name.
    pub name: &'static str,
    /// Peak vector-FMA GFLOP/s.
    pub peak_gflops: f64,
    /// Peak without vectorization (scalar FMA issue).
    pub scalar_gflops: f64,
    /// Memory bandwidth, GB/s.
    pub bw_gbs: f64,
}

impl Roofline {
    /// Build from a platform model.
    pub fn for_platform(p: &Platform) -> Self {
        Self {
            name: p.name,
            peak_gflops: p.peak_sp_gflops(),
            scalar_gflops: p.peak_sp_gflops() / p.simd_lanes_sp() as f64,
            bw_gbs: p.stream_bw_gbs,
        }
    }

    /// Attainable GFLOP/s at arithmetic intensity `ai` under the vector
    /// roof.
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.bw_gbs).min(self.peak_gflops)
    }

    /// Attainable GFLOP/s under the scalar roof.
    pub fn attainable_scalar(&self, ai: f64) -> f64 {
        (ai * self.bw_gbs).min(self.scalar_gflops)
    }

    /// The ridge point: the intensity where the kernel stops being
    /// memory bound.
    pub fn ridge(&self) -> f64 {
        self.peak_gflops / self.bw_gbs
    }
}

/// Fraction of the roofline ceiling achieved by a measured point.
pub fn efficiency(roof: &Roofline, point: &RooflinePoint) -> f64 {
    point.gflops / roof.attainable(point.ai)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_scale_linearly_with_n() {
        let a = kernel_cost(Kernel::Vgh, Layout::Soa, 128);
        let b = kernel_cost(Kernel::Vgh, Layout::Soa, 256);
        assert!((b.flops / a.flops - 2.0).abs() < 1e-12);
        assert!((b.cache_bytes / a.cache_bytes - 2.0).abs() < 1e-12);
    }

    #[test]
    fn soa_has_higher_cache_ai_than_aos() {
        // The paper's Fig. 10: Opt A raises the cache-aware AI (outputs
        // touched 16× instead of 64×).
        for k in [Kernel::Vgl, Kernel::Vgh] {
            let aos = kernel_cost(k, Layout::Aos, 2048).cache_ai();
            let soa = kernel_cost(k, Layout::Soa, 2048).cache_ai();
            assert!(soa > aos, "{k}: {soa} ≤ {aos}");
        }
    }

    #[test]
    fn aosoa_matches_soa_per_eval_costs() {
        let a = kernel_cost(Kernel::Vgh, Layout::Soa, 512);
        let b = kernel_cost(Kernel::Vgh, Layout::AoSoA, 512);
        assert_eq!(a.flops, b.flops);
        assert_eq!(a.cache_bytes, b.cache_bytes);
    }

    #[test]
    fn vgh_dram_traffic_matches_paper_quote() {
        // 64N reads + 10N writes (SoA) in 4-byte words.
        let c = kernel_cost(Kernel::Vgh, Layout::Soa, 1000);
        assert_eq!(c.dram_bytes_min, (64.0 + 10.0) * 4.0 * 1000.0);
        let a = kernel_cost(Kernel::Vgh, Layout::Aos, 1000);
        assert_eq!(a.dram_bytes_min, (64.0 + 13.0) * 4.0 * 1000.0);
    }

    #[test]
    fn kernel_flop_ordering() {
        // VGH > VGL > V at fixed layout and N.
        let n = 256;
        let v = kernel_cost(Kernel::V, Layout::Soa, n).flops;
        let vgl = kernel_cost(Kernel::Vgl, Layout::Soa, n).flops;
        let vgh = kernel_cost(Kernel::Vgh, Layout::Soa, n).flops;
        assert!(vgh > vgl && vgl > v);
    }

    #[test]
    fn roofline_ceiling_shape() {
        let r = Roofline::for_platform(&Platform::knl());
        // Memory-bound region: attainable rises with AI.
        assert!(r.attainable(0.1) < r.attainable(1.0));
        // Compute-bound region: flat at peak.
        let high = r.ridge() * 10.0;
        assert_eq!(r.attainable(high), r.peak_gflops);
        // Scalar roof below vector roof at high AI.
        assert!(r.attainable_scalar(high) < r.attainable(high));
    }

    #[test]
    fn ridge_point_consistency() {
        let r = Roofline::for_platform(&Platform::bdw());
        let at_ridge = r.attainable(r.ridge());
        assert!((at_ridge - r.peak_gflops).abs() / r.peak_gflops < 1e-9);
    }

    #[test]
    fn efficiency_of_a_roofline_point() {
        let r = Roofline::for_platform(&Platform::knl());
        let p = RooflinePoint {
            label: "test".into(),
            ai: 1.0,
            gflops: r.attainable(1.0) / 2.0,
        };
        assert!((efficiency(&r, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn knl_mcdram_ridge_far_right_of_bdw() {
        // KNL's 490 GB/s MCDRAM vs BDW's 64 GB/s: the ridge moves right
        // roughly with peak/bw.
        let knl = Roofline::for_platform(&Platform::knl());
        let bdw = Roofline::for_platform(&Platform::bdw());
        assert!(knl.ridge() > bdw.ridge() * 0.5);
        assert!(knl.peak_gflops > bdw.peak_gflops);
    }
}
